#pragma once

// Injectable filesystem seam + deterministic fault injection.
//
// All service-layer IO (job store, result cache, worker, daemon) goes
// through the `Fs` interface below: one virtual call per filesystem
// operation, with `real_fs()` as the production implementation. That seam
// is what makes the service's durability claims *testable* — `FaultyFs`
// wraps any Fs and injects, at a scheduled operation index:
//
//   * crashes (an `InjectedCrash` is thrown before the syscall runs —
//     the in-process equivalent of `kill -9` at that exact instant),
//   * torn writes (an append persists only a prefix, then "crashes"),
//   * IO errors (EIO, ENOSPC, ... as a thrown `IoError`),
//   * delays (the op stalls for scheduled fake-clock ticks and/or real
//     milliseconds, then proceeds — the gray-failure injection the
//     fail-slow tests storm with).
//
// Because workers, the store, and the merger are deterministic given a
// frozen clock, an op index fully identifies an injection point: the fault
// matrix test replays the same run once per point and proves the resumed
// output byte-identical to the uninterrupted one.
//
// Layering: this header is pure util — it knows nothing about scenarios
// or the service. Callers translate `IoError` into their own error types
// where appropriate.

#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/clock.hpp"

namespace dualcast::util {

/// A filesystem operation failed. Carries the errno-style code so callers
/// can distinguish transient faults (worth a backoff + retry) from
/// structural ones (missing directory, read-only filesystem).
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, int code)
      : std::runtime_error(what), code_(code) {}

  int code() const { return code_; }
  /// Transient = a retry after a short backoff may succeed (EIO, EAGAIN,
  /// EINTR, ENOSPC — an operator can free space while workers back off —
  /// ESTALE: a reopen rebinds a handle that went stale under an NFS
  /// client's cache — and ETIMEDOUT: a per-op deadline fired on a hung
  /// mount that may come back).
  bool transient() const;

 private:
  int code_;
};

/// Thrown by FaultyFs to simulate the process dying at a syscall: not an
/// IoError on purpose — no retry loop may catch it, it must unwind the
/// whole worker exactly like a kill would (leases left held, partial
/// files left behind).
class InjectedCrash : public std::exception {
 public:
  explicit InjectedCrash(std::string what) : what_(std::move(what)) {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

/// Thin filesystem interface: one virtual call == one injectable (and
/// traceable) operation. Paths are plain strings; implementations must be
/// safe to call from multiple threads.
class Fs {
 public:
  virtual ~Fs() = default;

  virtual bool exists(const std::string& path) = 0;
  /// Reads the whole file. Returns false when absent; throws on IO error.
  virtual bool read_file(const std::string& path, std::string& out) = 0;
  /// Creates/truncates and writes the whole file (no fsync).
  virtual void write_file(const std::string& path, std::string_view data) = 0;
  /// Appends in a single write() (O_APPEND | O_CREAT; no fsync).
  virtual void append(const std::string& path, std::string_view data) = 0;
  /// fsyncs the file's current contents.
  virtual void fsync_file(const std::string& path) = 0;
  /// Hard-links `existing` to `link_path`. Returns false when `link_path`
  /// already exists — the portable atomic create-if-absent primitive that
  /// publishes a fully-written file (unlike O_EXCL create + write, which
  /// exposes an empty-file window to concurrent readers; link() is also
  /// the classic NFS-safe lockfile technique).
  virtual bool link(const std::string& existing,
                    const std::string& link_path) = 0;
  virtual void rename(const std::string& from, const std::string& to) = 0;
  /// Returns false when the path was already absent.
  virtual bool unlink(const std::string& path) = 0;
  /// Entry names (not paths) in `dir`, sorted. Empty when `dir` is absent.
  virtual std::vector<std::string> list(const std::string& dir) = 0;
  virtual void create_dirs(const std::string& dir) = 0;
  /// fsyncs a directory so renames/creates inside it are durable.
  virtual void sync_dir(const std::string& dir) = 0;
  /// Size in bytes, or -1 when absent.
  virtual std::int64_t file_size(const std::string& path) = 0;
  /// Free bytes on the filesystem holding `path` (statvfs), or -1 when
  /// unknown. The daemon's disk-pressure ladder probes through this seam
  /// so tests can shrink a disk without filling one.
  virtual std::int64_t free_bytes(const std::string& path) {
    (void)path;
    return -1;
  }
  /// Drops any client-side caching for `path`, so the next read observes
  /// the shared (server) state — the re-verify hook the lease/steal and
  /// recovery paths call before acting on a read that must be current.
  /// Local filesystems are always current (default no-op); RealFs
  /// open+closes the file so an NFS close-to-open mount revalidates;
  /// SharedFsSim drops its simulated view cache.
  virtual void invalidate(const std::string& path) { (void)path; }

  // --- composed helpers (non-virtual: every step goes through the
  //     virtuals above, so faults hit each constituent op) --------------

  /// Durable atomic whole-file write: tmp in the same directory, fsync,
  /// rename over the target, fsync the directory. Readers never observe a
  /// partial file; a crash leaves either the old or the new content.
  void write_file_atomic(const std::string& path, std::string_view data);
};

/// The process-wide real filesystem (what a null `Fs*` resolves to).
Fs& real_fs();

/// read_file with a single retry on ESTALE. The first attempt's failure
/// already dropped the stale binding (SharedFsSim erases the cache entry;
/// a real NFS client rebinds on reopen), so one retry resolves to the
/// current file or a clean miss. Other IoErrors propagate untouched.
bool read_file_retry_estale(Fs& fs, const std::string& path,
                            std::string& out);

/// CRC32C (Castagnoli) of `data`, software table implementation.
/// crc32c("123456789") == 0xE3069283.
std::uint32_t crc32c(std::string_view data);

/// One scheduled fault. `at` counts *matching* operations (0-based):
/// with empty filters it is the global op index; with `op`/`path_substr`
/// set it is the N-th append / N-th op touching a lease file / etc., which
/// keeps test schedules stable against unrelated op-sequence changes.
struct InjectedFault {
  enum class Kind { crash, torn, error, delay };

  Kind kind = Kind::crash;
  int at = 0;
  std::string op;           ///< "" = any op name ("append", "fsync", ...)
  std::string path_substr;  ///< "" = any path
  int err = 0;              ///< errno for Kind::error (e.g. EIO, ENOSPC)
  std::size_t keep_bytes = 0;  ///< prefix persisted by a torn append
  bool sticky = false;  ///< fire on every matching op from `at` on
                        ///< (models a persistently failing device /
                        ///< read-only mount instead of a one-shot glitch)
  int delay_ms = 0;     ///< Kind::delay: real milliseconds to stall
  std::int64_t delay_ticks = 0;  ///< Kind::delay: FakeClock seconds to
                                 ///< advance on the tick clock (if set)
};

/// Fault-injecting Fs decorator (see file comment). Deterministic: ops are
/// counted in call order, so a single-threaded caller under a frozen
/// FakeClock replays the same op sequence every run.
class FaultyFs final : public Fs {
 public:
  explicit FaultyFs(Fs& base) : base_(base) {}

  void inject(InjectedFault fault);

  /// Kind::delay support: the clock a firing delay advances by
  /// `delay_ticks` (a stalled op *is* time passing — lease expiries move
  /// under a frozen-clock test without any real sleeping), and a hook run
  /// while the op is stalled (outside the FaultyFs lock, so it may do IO
  /// through another Fs — this is how a test makes a peer steal the
  /// stalled worker's lease mid-hang).
  void set_tick_clock(FakeClock* clock);
  void set_on_stall(std::function<void()> hook);

  /// Total operations observed so far.
  int ops() const;
  /// Faults that have fired so far.
  int faults_fired() const;
  /// Delay faults that have completed their stall so far.
  int stalls() const;
  /// (op, path) per operation, in order — the fault matrix derives its
  /// injection points from a fault-free run's trace.
  std::vector<std::pair<std::string, std::string>> trace() const;

  bool exists(const std::string& path) override;
  bool read_file(const std::string& path, std::string& out) override;
  void write_file(const std::string& path, std::string_view data) override;
  void append(const std::string& path, std::string_view data) override;
  void fsync_file(const std::string& path) override;
  bool link(const std::string& existing,
            const std::string& link_path) override;
  void rename(const std::string& from, const std::string& to) override;
  bool unlink(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir) override;
  void create_dirs(const std::string& dir) override;
  void sync_dir(const std::string& dir) override;
  std::int64_t file_size(const std::string& path) override;
  std::int64_t free_bytes(const std::string& path) override;
  void invalidate(const std::string& path) override;

 private:
  struct Armed {
    InjectedFault fault;
    int seen = 0;     ///< matching ops observed so far
    bool fired = false;
  };

  /// Records the op, then fires any due fault: crash/error throw; a due
  /// torn fault returns the byte count to keep, for `append` to execute
  /// (prefix then crash). Only `append` can receive a torn fault; other
  /// ops treat a due torn fault as a crash. A due delay fault stalls
  /// *before* the op runs — tick clock advanced, real sleep, on_stall hook
  /// — all outside the lock, then the op proceeds normally.
  std::optional<std::size_t> check(const char* op, const std::string& path);

  Fs& base_;
  mutable std::mutex mutex_;
  int ops_ = 0;
  int fired_ = 0;
  int stalls_ = 0;
  std::vector<Armed> faults_;
  std::vector<std::pair<std::string, std::string>> trace_;
  FakeClock* tick_clock_ = nullptr;
  std::function<void()> on_stall_;
};

/// Uniform per-op latency decorator: every operation sleeps `delay_ms`
/// (real time) and/or advances `tick_clock` by `tick_seconds` before
/// running. Models a uniformly slow mount (cold NFS server, saturated
/// disk) as opposed to FaultyFs's targeted single-op stalls; `soak --slow`
/// runs whole daemons behind one of these.
class SlowFs final : public Fs {
 public:
  SlowFs(Fs& base, int delay_ms, FakeClock* tick_clock = nullptr,
         std::int64_t tick_seconds = 0)
      : base_(base),
        delay_ms_(delay_ms),
        tick_clock_(tick_clock),
        tick_seconds_(tick_seconds) {}

  bool exists(const std::string& path) override;
  bool read_file(const std::string& path, std::string& out) override;
  void write_file(const std::string& path, std::string_view data) override;
  void append(const std::string& path, std::string_view data) override;
  void fsync_file(const std::string& path) override;
  bool link(const std::string& existing,
            const std::string& link_path) override;
  void rename(const std::string& from, const std::string& to) override;
  bool unlink(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir) override;
  void create_dirs(const std::string& dir) override;
  void sync_dir(const std::string& dir) override;
  std::int64_t file_size(const std::string& path) override;
  std::int64_t free_bytes(const std::string& path) override;
  void invalidate(const std::string& path) override;

 private:
  void stall();

  Fs& base_;
  int delay_ms_;
  FakeClock* tick_clock_;
  std::int64_t tick_seconds_;
};

/// Per-op IO deadline decorator: after each operation returns, checks a
/// shared `Deadline` and converts a blown budget into a *typed, transient*
/// `IoError(ETIMEDOUT)` — a hung append/link/read surfaces as an error the
/// retry loop can see instead of an indefinite stall. Cooperative on
/// purpose: the op itself is never interrupted (no signals, no second
/// thread), so a slow-but-successful op still completed on disk — callers
/// must treat a timed-out op as *maybe done*, which the record layer's
/// idempotent appends already do. The deadline is per-worker-op, set via
/// `set_deadline` before each logical operation.
class DeadlineFs final : public Fs {
 public:
  explicit DeadlineFs(Fs& base) : base_(base) {}

  /// Installs the budget the following ops are checked against. An
  /// inactive (default) Deadline disables checking.
  void set_deadline(Deadline deadline);
  /// Times out (throws IoError(ETIMEDOUT)) if the current deadline has
  /// expired. Public so retry loops can re-check between attempts.
  void check_deadline(const char* op, const std::string& path);

  bool exists(const std::string& path) override;
  bool read_file(const std::string& path, std::string& out) override;
  void write_file(const std::string& path, std::string_view data) override;
  void append(const std::string& path, std::string_view data) override;
  void fsync_file(const std::string& path) override;
  bool link(const std::string& existing,
            const std::string& link_path) override;
  void rename(const std::string& from, const std::string& to) override;
  bool unlink(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir) override;
  void create_dirs(const std::string& dir) override;
  void sync_dir(const std::string& dir) override;
  std::int64_t file_size(const std::string& path) override;
  std::int64_t free_bytes(const std::string& path) override;
  void invalidate(const std::string& path) override;

 private:
  Fs& base_;
  mutable std::mutex mutex_;
  Deadline deadline_;
};

/// Jittered exponential backoff with a deterministic (seeded) jitter
/// stream: delay grows initial, 2*initial, ... capped at `max_ms`, each
/// drawn uniformly from [base/2, base] so contending fleet members desync
/// instead of retrying in lockstep.
class Backoff {
 public:
  Backoff(int initial_ms, int max_ms, std::uint64_t seed);

  /// Next delay in milliseconds (advances the schedule).
  int next_ms();
  /// Deadline-aware variant: the drawn delay is clamped to
  /// `remaining_ms` so a retry loop never sleeps past its budget
  /// (returns 0 when the budget is gone).
  int next_ms(std::int64_t remaining_ms);
  /// Back to the initial delay (call after progress).
  void reset();

 private:
  int initial_ms_;
  int max_ms_;
  int base_ms_;
  std::uint64_t state_;
};

}  // namespace dualcast::util
