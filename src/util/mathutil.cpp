#include "util/mathutil.hpp"

#include <bit>
#include <cmath>

#include "util/assert.hpp"

namespace dualcast {

int floor_log2(std::uint64_t x) {
  DC_EXPECTS(x >= 1);
  return 63 - std::countl_zero(x);
}

int ceil_log2(std::uint64_t x) {
  DC_EXPECTS(x >= 1);
  const int fl = floor_log2(x);
  return is_pow2(x) ? fl : fl + 1;
}

int clog2(std::uint64_t x) {
  const int c = ceil_log2(x);
  return c < 1 ? 1 : c;
}

bool is_pow2(std::uint64_t x) { return x >= 1 && (x & (x - 1)) == 0; }

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  DC_EXPECTS(b > 0);
  return (a >= 0) ? (a + b - 1) / b : a / b;
}

double pow2_neg(int i) {
  DC_EXPECTS(i >= 0 && i <= 1023);
  return std::ldexp(1.0, -i);
}

std::int64_t round_up(std::int64_t x, std::int64_t m) {
  DC_EXPECTS(m > 0);
  const std::int64_t rem = x % m;
  if (rem == 0) return x;
  return x >= 0 ? x + (m - rem) : x - rem;
}

}  // namespace dualcast
