#pragma once

// Small integer/real math helpers shared across the library.
//
// The paper's algorithms are parameterized by `log n` and `log Δ`; we follow
// the usual convention for non-powers-of-two: `clog2(x) = max(1, ceil(log2
// x))`, so probability ladders like {1/2, 1/4, ..., 1/2^L} are always
// non-empty and cover the contention range.

#include <cstdint>

namespace dualcast {

/// floor(log2(x)); requires x >= 1.
int floor_log2(std::uint64_t x);

/// ceil(log2(x)); requires x >= 1. ceil_log2(1) == 0.
int ceil_log2(std::uint64_t x);

/// max(1, ceil(log2(x))): the "log n" of the paper's probability ladders.
int clog2(std::uint64_t x);

/// True if x is a power of two (x >= 1).
bool is_pow2(std::uint64_t x);

/// ceil(a / b) for positive integers; requires b > 0.
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// 2^-i as a double; requires 0 <= i <= 1023.
double pow2_neg(int i);

/// Round x up to the next multiple of m (m > 0). round_up(6, 4) == 8;
/// round_up(8, 4) == 8.
std::int64_t round_up(std::int64_t x, std::int64_t m);

}  // namespace dualcast
