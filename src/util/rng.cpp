#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace dualcast {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t state = x;
  return splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro's all-zero state is degenerate; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DC_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = std::uint64_t(-1) - (std::uint64_t(-1) % span);
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

bool Rng::coin_pow2(int i) {
  DC_EXPECTS(i >= 0 && i <= 63);
  if (i == 0) return true;
  return bits(i) == 0;
}

std::uint64_t Rng::bits(int k) {
  DC_EXPECTS(k >= 0 && k <= 64);
  if (k == 0) return 0;
  return next_u64() >> (64 - k);
}

Rng Rng::fork(std::uint64_t tag) {
  const std::uint64_t child =
      mix64(seed_ ^ mix64(tag) ^ mix64(0xD1B54A32D192ED03ull + fork_counter_));
  ++fork_counter_;
  return Rng(child);
}

Rng Rng::fork(std::string_view tag) {
  // FNV-1a over the tag, then defer to the numeric fork.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return fork(h);
}

}  // namespace dualcast
