#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace dualcast {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t state = x;
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro's all-zero state is degenerate; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DC_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = std::uint64_t(-1) - (std::uint64_t(-1) % span);
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

Rng Rng::fork(std::uint64_t tag) {
  const std::uint64_t child =
      mix64(seed_ ^ mix64(tag) ^ mix64(0xD1B54A32D192ED03ull + fork_counter_));
  ++fork_counter_;
  return Rng(child);
}

Rng Rng::fork(std::string_view tag) {
  // FNV-1a over the tag, then defer to the numeric fork.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return fork(h);
}

}  // namespace dualcast
