#pragma once

// Deterministic, forkable pseudo-random number generation.
//
// Every stochastic component of the simulator (each node process, each
// adversary, each pre-simulation an adversary runs privately) draws from its
// own `Rng` stream forked from a single master seed. This gives:
//   * reproducibility — one seed determines the whole execution;
//   * independence in the model-theoretic sense — an oblivious adversary's
//     stream shares no state with node streams, so it provably cannot depend
//     on node coin flips;
//   * exact power-of-two Bernoulli coins (`coin_pow2`), which the Decay
//     family of algorithms uses, avoiding floating-point edge cases.
//
// The generator is xoshiro256** seeded via SplitMix64 — fast, high quality,
// and trivially portable.

#include <array>
#include <cstdint>
#include <string_view>

#include "util/assert.hpp"

namespace dualcast {

/// One step of the SplitMix64 sequence; also used as a mixing function.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of a value (SplitMix64 finalizer). Used for stream derivation.
std::uint64_t mix64(std::uint64_t x);

/// A forkable pseudo-random stream (xoshiro256**).
class Rng {
 public:
  /// Creates a stream from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // The draw methods are defined inline: they sit on the engine's
  // per-node-per-round and per-edge-per-round hot paths, where a function
  // call per draw is measurable.

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Bernoulli trial with probability exactly 2^-i, i >= 0, via i fair bits.
  /// i = 0 always succeeds. Requires 0 <= i <= 63.
  bool coin_pow2(int i) {
    DC_EXPECTS(i >= 0 && i <= 63);
    if (i == 0) return true;
    return bits(i) == 0;
  }

  /// k uniformly random bits packed into the low bits of the result.
  /// Requires 0 <= k <= 64; k == 0 yields 0.
  std::uint64_t bits(int k) {
    DC_EXPECTS(k >= 0 && k <= 64);
    if (k == 0) return 0;
    return next_u64() >> (64 - k);
  }

  /// 64 independent Bernoulli(2^-i) trials packed into one word: bit j of
  /// the result is set with probability exactly 2^-i, independently across
  /// bits (the AND of i raw words sets a bit iff all i of its fair bits came
  /// up 1). Costs i draws for 64 trials — the word-parallel form of 64
  /// coin_pow2(i) calls, and the depth-i rung of a Pow2MaskLadder (the one
  /// implementation; this is a convenience wrapper for callers whose whole
  /// block shares a single index). i == 0 yields all-ones. Requires
  /// 0 <= i <= 63.
  std::uint64_t bernoulli_pow2_mask(int i);

  /// Derives an independent child stream. Distinct tags (or successive calls
  /// with the same tag) give statistically independent streams; forking does
  /// not perturb this stream's own sequence.
  Rng fork(std::uint64_t tag);

  /// Derives an independent child stream from a string tag.
  Rng fork(std::string_view tag);

  /// The seed this stream was constructed from (for diagnostics/logging).
  std::uint64_t seed() const { return seed_; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t seed_ = 0;
  std::uint64_t fork_counter_ = 0;
  std::array<std::uint64_t, 4> s_{};
};

/// Which streams the batch engine's kernels draw their per-round coins from.
///
///   per_node — every node draws from its own forked stream, consuming
///              exactly the draws its scalar algorithm would: the batch
///              engine replays *byte-identically* against the scalar engine
///              (the default, and what the equality test suite pins).
///   word     — kernels that support it draw one mask per 64-node block from
///              a per-block stream (bernoulli_pow2_mask / Pow2MaskLadder),
///              cutting RNG cost by up to 64/ladder. Same per-trial
///              distribution, different sample path: validated by the
///              distributional differential tests, not byte equality.
enum class RngMode : std::uint8_t { per_node, word };

/// The ladder-aware mask trick: lazily extended prefix masks over one
/// stream, mask(i) = AND of the first i raw words (mask(0) is all-ones), so
/// bit j of mask(i) is a Bernoulli(2^-i) trial. One 64-node block whose
/// nodes sit on *divergent* decay-ladder indices shares a single ladder:
/// node v consumes bit (v mod 64) of mask(i_v). Bits of nested masks are
/// correlated down the ladder but distinct bit lanes are independent, so the
/// contract is: consume at most one mask per bit lane per ladder lifetime
/// (one object per block per round). Total cost: max consumed index draws
/// per block, vs one draw per node.
class Pow2MaskLadder {
 public:
  /// Binds to the block's stream; draws lazily as deeper masks are asked for.
  explicit Pow2MaskLadder(Rng& rng) : rng_(&rng) { masks_[0] = ~std::uint64_t{0}; }

  /// Prefix mask of depth i. Requires 0 <= i <= 63.
  std::uint64_t mask(int i) {
    DC_EXPECTS(i >= 0 && i <= 63);
    while (depth_ < i) {
      masks_[depth_ + 1] = masks_[depth_] & rng_->next_u64();
      ++depth_;
    }
    return masks_[static_cast<std::size_t>(i)];
  }

  /// Raw mask table for word-parallel lane gathers
  /// (simd::gather_ladder_bits): entries [0, depth] are valid after
  /// mask(depth); deeper entries must not be addressed by any gathered
  /// lane.
  const std::uint64_t* levels() const { return masks_.data(); }

 private:
  Rng* rng_;
  int depth_ = 0;
  /// Entries above depth_ are never read; only masks_[0] needs a value
  /// (set in the constructor), so no zero-initialization — one ladder is
  /// constructed per block per round on the word-mode hot path.
  std::array<std::uint64_t, 64> masks_;
};

inline std::uint64_t Rng::bernoulli_pow2_mask(int i) {
  Pow2MaskLadder ladder(*this);
  return ladder.mask(i);
}

}  // namespace dualcast
