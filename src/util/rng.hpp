#pragma once

// Deterministic, forkable pseudo-random number generation.
//
// Every stochastic component of the simulator (each node process, each
// adversary, each pre-simulation an adversary runs privately) draws from its
// own `Rng` stream forked from a single master seed. This gives:
//   * reproducibility — one seed determines the whole execution;
//   * independence in the model-theoretic sense — an oblivious adversary's
//     stream shares no state with node streams, so it provably cannot depend
//     on node coin flips;
//   * exact power-of-two Bernoulli coins (`coin_pow2`), which the Decay
//     family of algorithms uses, avoiding floating-point edge cases.
//
// The generator is xoshiro256** seeded via SplitMix64 — fast, high quality,
// and trivially portable.

#include <array>
#include <cstdint>
#include <string_view>

#include "util/assert.hpp"

namespace dualcast {

/// One step of the SplitMix64 sequence; also used as a mixing function.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of a value (SplitMix64 finalizer). Used for stream derivation.
std::uint64_t mix64(std::uint64_t x);

/// A forkable pseudo-random stream (xoshiro256**).
class Rng {
 public:
  /// Creates a stream from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // The draw methods are defined inline: they sit on the engine's
  // per-node-per-round and per-edge-per-round hot paths, where a function
  // call per draw is measurable.

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Bernoulli trial with probability exactly 2^-i, i >= 0, via i fair bits.
  /// i = 0 always succeeds. Requires 0 <= i <= 63.
  bool coin_pow2(int i) {
    DC_EXPECTS(i >= 0 && i <= 63);
    if (i == 0) return true;
    return bits(i) == 0;
  }

  /// k uniformly random bits packed into the low bits of the result.
  /// Requires 0 <= k <= 64; k == 0 yields 0.
  std::uint64_t bits(int k) {
    DC_EXPECTS(k >= 0 && k <= 64);
    if (k == 0) return 0;
    return next_u64() >> (64 - k);
  }

  /// Derives an independent child stream. Distinct tags (or successive calls
  /// with the same tag) give statistically independent streams; forking does
  /// not perturb this stream's own sequence.
  Rng fork(std::uint64_t tag);

  /// Derives an independent child stream from a string tag.
  Rng fork(std::string_view tag);

  /// The seed this stream was constructed from (for diagnostics/logging).
  std::uint64_t seed() const { return seed_; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t seed_ = 0;
  std::uint64_t fork_counter_ = 0;
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace dualcast
