#include "util/simd.hpp"

#include <atomic>
#include <bit>

#if defined(__x86_64__) || defined(__i386__)
#define DUALCAST_X86 1
#include <immintrin.h>
#else
#define DUALCAST_X86 0
#endif

namespace dualcast::simd {
namespace detail {

bool avx2_supported() {
#if DUALCAST_X86
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

int and_popcount_cap2_scalar(std::span<const std::uint64_t> bits,
                             std::span<const std::int32_t> index,
                             const std::uint64_t* tx_words, int count,
                             std::uint64_t& hit_word,
                             std::int32_t& hit_index) {
  for (std::size_t k = 0; k < bits.size(); ++k) {
    const std::uint64_t m =
        bits[k] & tx_words[static_cast<std::size_t>(index[k])];
    if (m == 0) continue;
    count += std::popcount(m);
    hit_word = m;
    hit_index = index[k];
    if (count >= 2) return 2;
  }
  return count;
}

std::uint64_t gather_ladder_bits_scalar(const std::uint64_t* masks,
                                        const std::uint8_t* lane_index,
                                        std::uint64_t lanes) {
  std::uint64_t out = 0;
  std::uint64_t rest = lanes;
  while (rest != 0) {
    const int j = std::countr_zero(rest);
    out |= masks[lane_index[j]] & (std::uint64_t{1} << j);
    rest &= rest - 1;
  }
  return out;
}

#if DUALCAST_X86

__attribute__((target("avx2"))) int and_popcount_cap2_avx2(
    std::span<const std::uint64_t> bits, std::span<const std::int32_t> index,
    const std::uint64_t* tx_words, int count, std::uint64_t& hit_word,
    std::int32_t& hit_index) {
  std::size_t k = 0;
  const std::size_t m = bits.size();
  for (; k + 4 <= m; k += 4) {
    const __m128i idx4 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(index.data() + k));
    const __m256i tx4 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(tx_words), idx4, 8);
    const __m256i row4 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bits.data() + k));
    const __m256i and4 = _mm256_and_si256(row4, tx4);
    if (_mm256_testz_si256(and4, and4)) continue;
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), and4);
    for (int j = 0; j < 4; ++j) {
      if (lanes[j] == 0) continue;
      count += std::popcount(lanes[j]);
      hit_word = lanes[j];
      hit_index = index[k + static_cast<std::size_t>(j)];
      if (count >= 2) return 2;
    }
  }
  return and_popcount_cap2_scalar(bits.subspan(k), index.subspan(k), tx_words,
                                  count, hit_word, hit_index);
}

__attribute__((target("avx2"))) std::uint64_t gather_ladder_bits_avx2(
    const std::uint64_t* masks, const std::uint8_t* lane_index,
    std::uint64_t lanes) {
  std::uint64_t out = 0;
  const __m256i one = _mm256_set1_epi64x(1);
  for (int j = 0; j < 64; j += 4) {
    std::int32_t packed;
    __builtin_memcpy(&packed, lane_index + j, 4);
    const __m128i idx4 = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(packed));
    const __m256i mask4 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(masks), idx4, 8);
    const __m256i shift4 = _mm256_setr_epi64x(j, j + 1, j + 2, j + 3);
    const __m256i bit4 =
        _mm256_and_si256(_mm256_srlv_epi64(mask4, shift4), one);
    alignas(32) std::uint64_t b[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(b), bit4);
    out |= (b[0] << j) | (b[1] << (j + 1)) | (b[2] << (j + 2)) |
           (b[3] << (j + 3));
  }
  return out & lanes;
}

#else  // !DUALCAST_X86

int and_popcount_cap2_avx2(std::span<const std::uint64_t> bits,
                           std::span<const std::int32_t> index,
                           const std::uint64_t* tx_words, int count,
                           std::uint64_t& hit_word, std::int32_t& hit_index) {
  return and_popcount_cap2_scalar(bits, index, tx_words, count, hit_word,
                                  hit_index);
}

std::uint64_t gather_ladder_bits_avx2(const std::uint64_t* masks,
                                      const std::uint8_t* lane_index,
                                      std::uint64_t lanes) {
  return gather_ladder_bits_scalar(masks, lane_index, lanes);
}

#endif  // DUALCAST_X86

}  // namespace detail

namespace {

std::atomic<bool> g_force_scalar{false};

bool use_avx2() {
  static const bool supported = detail::avx2_supported();
  return supported && !g_force_scalar.load(std::memory_order_relaxed);
}

}  // namespace

bool avx2_active() { return use_avx2(); }

void force_scalar(bool on) {
  g_force_scalar.store(on, std::memory_order_relaxed);
}

int and_popcount_cap2(std::span<const std::uint64_t> bits,
                      std::span<const std::int32_t> index,
                      const std::uint64_t* tx_words, int count,
                      std::uint64_t& hit_word, std::int32_t& hit_index) {
  if (use_avx2()) {
    return detail::and_popcount_cap2_avx2(bits, index, tx_words, count,
                                          hit_word, hit_index);
  }
  return detail::and_popcount_cap2_scalar(bits, index, tx_words, count,
                                          hit_word, hit_index);
}

std::uint64_t gather_ladder_bits(const std::uint64_t* masks,
                                 const std::uint8_t* lane_index,
                                 std::uint64_t lanes) {
  // Sparse lane words lose to the fixed 16-gather cost; the cutover point
  // is approximate (both paths produce identical bits).
  if (use_avx2() && std::popcount(lanes) >= 16) {
    return detail::gather_ladder_bits_avx2(masks, lane_index, lanes);
  }
  return detail::gather_ladder_bits_scalar(masks, lane_index, lanes);
}

}  // namespace dualcast::simd
