#pragma once

// Runtime-dispatched SIMD primitives for the engine's two word-parallel
// inner loops, with scalar fallbacks that are bit-for-bit equivalent (the
// parity suite in tests/test_util_simd.cpp compares both implementations on
// random inputs, so the dispatched result never depends on the host):
//
//   and_popcount_cap2  — the delivery resolver's per-listener block scan:
//                        count the transmitters adjacent to a listener as
//                        popcount(row_block & tx_word) over the row's
//                        stored blocks, early-exiting at 2 contenders
//                        (counts are only consumed as {0, 1, >= 2}). The
//                        AVX2 path gathers four transmitter words per step
//                        and skips all-miss chunks with one test.
//
//   gather_ladder_bits — the Pow2MaskLadder consumption loop of the
//                        word-RNG kernels: with divergent per-node ladder
//                        indices, lane j of the result is bit j of
//                        masks[lane_index[j]]. The AVX2 path gathers four
//                        ladder masks per step and re-packs the selected
//                        bits; dense holder words gain, sparse ones keep
//                        the scalar set-bit walk (the wrapper picks — the
//                        output is identical either way).
//
// Dispatch is decided once per process from CPU capability; force_scalar()
// exists for tests and diagnostics.

#include <cstdint>
#include <span>

namespace dualcast::simd {

/// True when the dispatched implementations use AVX2 on this host.
bool avx2_active();

/// Test hook: pin the dispatch to the scalar implementations (process-wide;
/// call with false to restore capability-based dispatch).
void force_scalar(bool on);

/// Adds popcount(bits[k] & tx_words[index[k]]) over all stored blocks to
/// `count`, capped at 2 (early exit); records the last examined nonzero
/// AND word and its block index in hit_word / hit_index. hit_* are only
/// meaningful when the returned count is exactly 1 — then they identify
/// the unique contender. `index` entries address tx_words.
int and_popcount_cap2(std::span<const std::uint64_t> bits,
                      std::span<const std::int32_t> index,
                      const std::uint64_t* tx_words, int count,
                      std::uint64_t& hit_word, std::int32_t& hit_index);

/// For each set bit j of `lanes`: bit j of the result is bit j of
/// masks[lane_index[j]]; other bits are 0. `lane_index` must have 64
/// entries, each < 64 and valid to read from `masks` (unused lanes may be
/// 0).
std::uint64_t gather_ladder_bits(const std::uint64_t* masks,
                                 const std::uint8_t* lane_index,
                                 std::uint64_t lanes);

namespace detail {
// Both implementations, exposed for the parity tests. The *_avx2 variants
// must only be called when avx2_supported() is true.
bool avx2_supported();
int and_popcount_cap2_scalar(std::span<const std::uint64_t> bits,
                             std::span<const std::int32_t> index,
                             const std::uint64_t* tx_words, int count,
                             std::uint64_t& hit_word, std::int32_t& hit_index);
int and_popcount_cap2_avx2(std::span<const std::uint64_t> bits,
                           std::span<const std::int32_t> index,
                           const std::uint64_t* tx_words, int count,
                           std::uint64_t& hit_word, std::int32_t& hit_index);
std::uint64_t gather_ladder_bits_scalar(const std::uint64_t* masks,
                                        const std::uint8_t* lane_index,
                                        std::uint64_t lanes);
std::uint64_t gather_ladder_bits_avx2(const std::uint64_t* masks,
                                      const std::uint8_t* lane_index,
                                      std::uint64_t lanes);
}  // namespace detail

}  // namespace dualcast::simd
