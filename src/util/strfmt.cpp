#include "util/strfmt.hpp"

#include <cstdio>
#include <cstdlib>

namespace dualcast {

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision < 0 ? 0 : precision, value);
  return buf;
}

std::string pad(const std::string& s, int width) {
  const std::size_t target = static_cast<std::size_t>(width < 0 ? -width : width);
  if (s.size() >= target) return s;
  const std::string fill(target - s.size(), ' ');
  return width < 0 ? fill + s : s + fill;
}

}  // namespace dualcast
