#pragma once

// Minimal string-building helpers (GCC 12's <format> is incomplete, so we
// provide the small subset the library needs).

#include <sstream>
#include <string>

namespace dualcast {

namespace detail {
inline void str_append(std::ostringstream&) {}

template <typename T, typename... Rest>
void str_append(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  str_append(os, rest...);
}
}  // namespace detail

/// Concatenates all arguments through operator<<.
template <typename... Args>
std::string str(const Args&... args) {
  std::ostringstream os;
  detail::str_append(os, args...);
  return os.str();
}

/// Fixed-precision decimal rendering of a double (e.g. fmt_double(3.14159, 2)
/// == "3.14").
std::string fmt_double(double value, int precision);

/// Right-pads (positive width) or left-pads (negative width) with spaces.
std::string pad(const std::string& s, int width);

}  // namespace dualcast
