// The paper's attacks, demonstrated: each adversary construction measurably
// delays the algorithms its theorem targets, and — just as importantly —
// fails against the algorithms/models the matching upper bounds protect.

#include <gtest/gtest.h>

#include <cmath>

#include "adversary/bracelet_presim.hpp"
#include "adversary/dense_sparse.hpp"
#include "adversary/offline_collider.hpp"
#include "adversary/schedule_attack.hpp"
#include "adversary/static_adversaries.hpp"
#include "core/factories.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"
#include "util/mathutil.hpp"

namespace dualcast {
namespace {

using testing::median_rounds;
using testing::run_global;
using testing::run_local;

DecayGlobalConfig persistent(ScheduleKind kind) {
  DecayGlobalConfig cfg = DecayGlobalConfig::fast(kind);
  cfg.calls = DecayGlobalConfig::kUnbounded;
  return cfg;
}

// ---------------------------------------------------------------------------
// Theorem 3.1: the online adaptive dense/sparse adversary vs Decay.
// ---------------------------------------------------------------------------

double dual_clique_attack_rounds(int n, ScheduleKind kind, int trials,
                                 std::uint64_t seed_base) {
  const DualCliqueNet dc = dual_clique(n, /*bridge_index=*/n / 4);
  const int max_rounds = 40 * n + 4000;
  return median_rounds(trials, seed_base, max_rounds, [&](std::uint64_t seed) {
    return run_global(dc.net, decay_global_factory(persistent(kind)),
                      std::make_unique<DenseSparseOnline>(
                          DenseSparseConfig{/*threshold_factor=*/0.5}),
                      /*source=*/1, seed, max_rounds);
  });
}

double dual_clique_baseline_rounds(int n, ScheduleKind kind, int trials,
                                   std::uint64_t seed_base) {
  const DualCliqueNet dc = dual_clique(n, /*bridge_index=*/n / 4);
  const int max_rounds = 40 * n + 4000;
  return median_rounds(trials, seed_base, max_rounds, [&](std::uint64_t seed) {
    return run_global(dc.net, decay_global_factory(persistent(kind)),
                      std::make_unique<RandomIidEdges>(0.5),
                      /*source=*/1, seed, max_rounds);
  });
}

TEST(DenseSparseAttack, DelaysFixedDecayRelativeToBenignAdversary) {
  const double attacked = dual_clique_attack_rounds(256, ScheduleKind::fixed,
                                                    /*trials=*/7, 100);
  const double benign = dual_clique_baseline_rounds(256, ScheduleKind::fixed,
                                                    /*trials=*/7, 100);
  EXPECT_GE(attacked, 3.0 * benign)
      << "attacked=" << attacked << " benign=" << benign;
}

TEST(DenseSparseAttack, DefeatsPermutedDecayToo) {
  // The online adaptive adversary reads the permutation bits from the
  // execution history, so permuted decay enjoys no protection (this is why
  // Theorem 3.1's Ω(n/log n) applies to *every* algorithm).
  const double attacked = dual_clique_attack_rounds(256, ScheduleKind::permuted,
                                                    /*trials=*/7, 200);
  const double benign = dual_clique_baseline_rounds(
      256, ScheduleKind::permuted, /*trials=*/7, 200);
  EXPECT_GE(attacked, 3.0 * benign)
      << "attacked=" << attacked << " benign=" << benign;
}

TEST(DenseSparseAttack, DelayGrowsRoughlyLinearly) {
  // Ω(n/log n): an 8x larger network should cost several times more rounds
  // under attack — far beyond what any polylog bound would allow.
  const double small = dual_clique_attack_rounds(64, ScheduleKind::fixed,
                                                 /*trials=*/7, 300);
  const double large = dual_clique_attack_rounds(512, ScheduleKind::fixed,
                                                 /*trials=*/7, 300);
  EXPECT_GE(large, 3.0 * small) << "small=" << small << " large=" << large;
}

TEST(DenseSparseAttack, RoundRobinShrugsItOff) {
  // Round robin never creates contention: it meets the adaptive lower-bound
  // regime with O(n) rounds, adversary notwithstanding.
  const int n = 256;
  const DualCliqueNet dc = dual_clique(n, n / 4);
  const RunResult result = run_global(
      dc.net, round_robin_factory(RoundRobinConfig{true}),
      std::make_unique<DenseSparseOnline>(DenseSparseConfig{0.5}),
      /*source=*/1, /*seed=*/5, /*max_rounds=*/4 * n);
  ASSERT_TRUE(result.solved);
  EXPECT_LE(result.rounds, 3 * n);
}

TEST(DenseSparseAttack, DelaysLocalBroadcastAcrossTheBridge) {
  const int n = 256;
  const DualCliqueNet dc = dual_clique(n, n / 4);
  const int max_rounds = 40 * n + 4000;
  const auto run_with = [&](std::unique_ptr<LinkProcess> adversary,
                            std::uint64_t seed) {
    return run_local(dc.net, decay_local_factory(DecayLocalConfig{}),
                     std::move(adversary), dc.side_a, seed, max_rounds);
  };
  const double attacked =
      median_rounds(7, 400, max_rounds, [&](std::uint64_t seed) {
        return run_with(std::make_unique<DenseSparseOnline>(
                            DenseSparseConfig{0.5}),
                        seed);
      });
  const double benign =
      median_rounds(7, 400, max_rounds, [&](std::uint64_t seed) {
        return run_with(std::make_unique<RandomIidEdges>(0.5), seed);
      });
  EXPECT_GE(attacked, 3.0 * benign)
      << "attacked=" << attacked << " benign=" << benign;
}

// ---------------------------------------------------------------------------
// Offline adaptive greedy collider ([11]'s Ω(n) regime).
// ---------------------------------------------------------------------------

TEST(GreedyCollider, DelaysDecayMoreThanTheOnlineAttack) {
  // The offline collider sees actual transmissions: crossing now requires
  // the bridge endpoint to be the unique transmitter, which is rarer than
  // merely transmitting in a sparse round.
  const int n = 128;
  const DualCliqueNet dc = dual_clique(n, n / 4);
  const int max_rounds = 200 * n;
  const double offline =
      median_rounds(5, 500, max_rounds, [&](std::uint64_t seed) {
        return run_global(dc.net,
                          decay_global_factory(persistent(ScheduleKind::fixed)),
                          std::make_unique<GreedyColliderOffline>(),
                          /*source=*/1, seed, max_rounds);
      });
  const double online = dual_clique_attack_rounds(n, ScheduleKind::fixed, 5, 500);
  EXPECT_GE(offline, online) << "offline=" << offline << " online=" << online;
  const double benign = dual_clique_baseline_rounds(n, ScheduleKind::fixed, 5, 500);
  EXPECT_GE(offline, 4.0 * benign);
}

TEST(GreedyCollider, CannotStopRoundRobin) {
  const int n = 128;
  const DualCliqueNet dc = dual_clique(n, 3);
  const RunResult result = run_global(
      dc.net, round_robin_factory(RoundRobinConfig{true}),
      std::make_unique<GreedyColliderOffline>(), /*source=*/7, /*seed=*/9,
      /*max_rounds=*/4 * n);
  ASSERT_TRUE(result.solved);
  EXPECT_LE(result.rounds, 3 * n);
}

// ---------------------------------------------------------------------------
// §4.1's motivating oblivious attack: the fixed Decay schedule is public;
// the permutation bits are not.
// ---------------------------------------------------------------------------

std::unique_ptr<LinkProcess> anti_decay_schedule(int n, int gamma,
                                                 double threshold_factor) {
  // Offline prediction of classic Decay on the dual clique, straight from
  // the public algorithm description: the source transmits alone in round 0,
  // informing its whole clique; those holders stay silent until the first
  // gamma*L alignment boundary and then walk the public ladder together.
  const int ladder = clog2(static_cast<std::uint64_t>(n));
  const int window_start = gamma * ladder;
  ScheduleAttackConfig cfg;
  cfg.predicted_transmitters = [n, ladder, window_start](int round) {
    if (round == 0) return 1.0;            // the source, alone
    if (round < window_start) return 0.0;  // alignment gap
    return (static_cast<double>(n) / 2.0) *
           fixed_decay_probability(round, ladder);
  };
  cfg.threshold_factor = threshold_factor;
  return std::make_unique<ScheduleAttackOblivious>(cfg);
}

TEST(AntiScheduleAttack, CripplesFixedDecayButNotPermutedDecay) {
  // The paper's core design point (§4.1): an oblivious adversary can attack
  // the public fixed schedule, but the permuted schedule's bits are created
  // after the adversary committed.
  const int n = 256;
  const DualCliqueNet dc = dual_clique(n, n / 4);
  const int max_rounds = 40 * n + 4000;
  const double fixed =
      median_rounds(7, 600, max_rounds, [&](std::uint64_t seed) {
        return run_global(dc.net,
                          decay_global_factory(persistent(ScheduleKind::fixed)),
                          anti_decay_schedule(n, 4, 0.5), /*source=*/1, seed,
                          max_rounds);
      });
  const double permuted =
      median_rounds(7, 600, max_rounds, [&](std::uint64_t seed) {
        return run_global(
            dc.net, decay_global_factory(persistent(ScheduleKind::permuted)),
            anti_decay_schedule(n, 4, 0.5), /*source=*/1, seed, max_rounds);
      });
  EXPECT_GE(fixed, 3.0 * permuted)
      << "fixed=" << fixed << " permuted=" << permuted;
}

TEST(AntiScheduleAttack, BoundedWindowDecayFailsOutright) {
  // With a bounded activity window, the attacked fixed-schedule algorithm
  // does not merely slow down — holders go silent before the bridge ever
  // clears and broadcast *fails*. (The paper-profile window of 2·log n calls
  // needs larger n for this to dominate; a 2-call window shows the same
  // mechanism at test scale. The threshold factor ~0.6 approximates the
  // analysis's optimal τ ≈ ln β, balancing the sparse-crossing and
  // lone-transmitter-in-dense-round escape routes.)
  const int n = 1024;
  const DualCliqueNet dc = dual_clique(n, n / 4);
  DecayGlobalConfig cfg = DecayGlobalConfig::fast(ScheduleKind::fixed);
  cfg.calls = 2;
  int failures = 0;
  const int trials = 7;
  for (int t = 0; t < trials; ++t) {
    const RunResult result = run_global(
        dc.net, decay_global_factory(cfg), anti_decay_schedule(n, 4, 0.6),
        /*source=*/1, 700 + static_cast<std::uint64_t>(t),
        /*max_rounds=*/4000);
    failures += result.solved ? 0 : 1;
  }
  EXPECT_GE(failures, 4) << "failures=" << failures << "/" << trials;
}

// ---------------------------------------------------------------------------
// Theorem 4.3: the bracelet pre-simulation adversary vs uncoordinated local
// broadcast.
// ---------------------------------------------------------------------------

/// Rounds until the *clasp receiver* b_t first hears any message (the only
/// quantity Theorem 4.3 is about; the 2k easy in-band receivers would
/// otherwise dominate the solve time). Censored at max_rounds.
double clasp_latency(const BraceletNet& br, ScheduleKind kind,
                     std::unique_ptr<LinkProcess> adversary,
                     std::uint64_t seed, int max_rounds) {
  Execution exec(br.net, decay_local_factory(DecayLocalConfig{kind, 0, 0}),
                 std::make_shared<LocalBroadcastProblem>(br.net, br.heads_a),
                 std::move(adversary), {seed, max_rounds, {}});
  while (!exec.done() &&
         exec.first_receive_round()[static_cast<std::size_t>(br.clasp_b)] < 0) {
    exec.step();
  }
  const int r =
      exec.first_receive_round()[static_cast<std::size_t>(br.clasp_b)];
  return r >= 0 ? static_cast<double>(r + 1) : static_cast<double>(max_rounds);
}

double median_clasp_latency(const BraceletNet& br, ScheduleKind kind,
                            bool attack, int trials, std::uint64_t base_seed,
                            int max_rounds) {
  std::vector<double> values;
  for (int t = 0; t < trials; ++t) {
    std::unique_ptr<LinkProcess> adversary;
    if (attack) {
      // threshold ≈ ln k (balancing both escape routes, as in the analysis).
      adversary = std::make_unique<BraceletPresimOblivious>(
          br, BraceletPresimConfig{/*threshold_factor=*/0.3,
                                   /*fallback_none=*/true});
    } else {
      adversary = std::make_unique<NoExtraEdges>();
    }
    values.push_back(clasp_latency(br, kind, std::move(adversary),
                                   base_seed + static_cast<std::uint64_t>(t),
                                   max_rounds));
  }
  return quantile(values, 0.5);
}

TEST(BraceletAttack, DelaysTheClaspByTheBandWindow) {
  const BraceletNet br = bracelet(2048);  // k = 32
  const int max_rounds = 100 * br.band_len;
  const double attacked = median_clasp_latency(br, ScheduleKind::fixed, true,
                                               7, 800, max_rounds);
  const double benign = median_clasp_latency(br, ScheduleKind::fixed, false,
                                             7, 800, max_rounds);
  EXPECT_GE(attacked, 3.0 * benign)
      << "attacked=" << attacked << " benign=" << benign;
}

TEST(BraceletAttack, WorksAgainstPrivatePermutedDecayToo) {
  // Lemma 4.5: the pre-simulation estimates *aggregate* density, which
  // concentrates even when each node randomizes privately — per-node secret
  // bits do not help without coordination.
  const BraceletNet br = bracelet(2048);
  const int max_rounds = 100 * br.band_len;
  const double attacked = median_clasp_latency(br, ScheduleKind::permuted,
                                               true, 7, 900, max_rounds);
  const double benign = median_clasp_latency(br, ScheduleKind::permuted, false,
                                             7, 900, max_rounds);
  EXPECT_GE(attacked, 3.0 * benign)
      << "attacked=" << attacked << " benign=" << benign;
}

TEST(BraceletAttack, PredictionsTrackActualDensity) {
  // For the deterministic fixed schedule the isolated pre-simulation's
  // dense/sparse labels must match a fresh real execution's density profile
  // during the prediction window.
  const BraceletNet br = bracelet(200);  // k = 10
  auto adversary = std::make_unique<BraceletPresimOblivious>(
      br, BraceletPresimConfig{0.25, true});
  auto* adv = adversary.get();
  Execution exec(br.net, decay_local_factory(DecayLocalConfig{}),
                 std::make_shared<LocalBroadcastProblem>(br.net, br.heads_a),
                 std::move(adversary), {42, 5 * br.band_len, {}});
  exec.run();
  ASSERT_EQ(static_cast<int>(adv->predicted_counts().size()), br.band_len);
  // Expected head transmitters per round is k * p_r; verify the adversary's
  // prediction is within a factor of the analytic expectation.
  const int ladder = clog2(2 * static_cast<std::uint64_t>(br.net.max_degree()));
  for (int r = 0; r < br.band_len; ++r) {
    const double expectation =
        br.band_len * fixed_decay_probability(r, ladder);
    EXPECT_LE(std::abs(adv->predicted_counts()[static_cast<std::size_t>(r)] -
                       expectation),
              std::max(4.0, 3.0 * std::sqrt(expectation)))
        << "round " << r;
  }
}

TEST(BraceletAttack, GeographicAlgorithmOnGeoGraphIsUnaffectedByOblivious) {
  // The §4.3 upper bound escapes the Ω(√n/log n) regime because geographic
  // graphs cannot realize the bracelet: on a geo graph, the same class of
  // adversary (oblivious) leaves the coordinated algorithm fast.
  Rng rng(31);
  const GeoNet geo = jittered_grid_geo(8, 8, 0.5, 0.05, 2.0, rng);
  std::vector<int> b;
  for (int v = 0; v < geo.net.n(); v += 3) b.push_back(v);
  const RunResult result = run_local(
      geo.net, geo_local_factory(GeoLocalConfig::fast()),
      std::make_unique<FlickerEdges>(2, 3), b, /*seed=*/33,
      /*max_rounds=*/1 << 20);
  EXPECT_TRUE(result.solved);
}

}  // namespace
}  // namespace dualcast
