// Adversary construction contracts and determinism guarantees.

#include <gtest/gtest.h>

#include "adversary/bracelet_presim.hpp"
#include "adversary/dense_sparse.hpp"
#include "adversary/schedule_attack.hpp"
#include "adversary/static_adversaries.hpp"
#include "core/factories.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace dualcast {
namespace {

TEST(AdversaryConfig, RandomIidRejectsBadProbability) {
  EXPECT_THROW(RandomIidEdges(-0.1), ContractViolation);
  EXPECT_THROW(RandomIidEdges(1.1), ContractViolation);
  EXPECT_NO_THROW(RandomIidEdges(0.0));
  EXPECT_NO_THROW(RandomIidEdges(1.0));
}

TEST(AdversaryConfig, FlickerRejectsEmptyPhases) {
  EXPECT_THROW(FlickerEdges(0, 3), ContractViolation);
  EXPECT_THROW(FlickerEdges(3, 0), ContractViolation);
}

TEST(AdversaryConfig, DenseSparseRejectsNonPositiveThreshold) {
  EXPECT_THROW(DenseSparseOnline(DenseSparseConfig{0.0}), ContractViolation);
  EXPECT_THROW(DenseSparseOnline(DenseSparseConfig{-1.0}), ContractViolation);
}

TEST(AdversaryConfig, ScheduleAttackRequiresPredictor) {
  ScheduleAttackConfig cfg;
  EXPECT_THROW(ScheduleAttackOblivious{cfg}, ContractViolation);
  cfg.predicted_transmitters = [](int) { return 1.0; };
  cfg.threshold_factor = 0.0;
  EXPECT_THROW(ScheduleAttackOblivious{cfg}, ContractViolation);
}

TEST(AdversaryConfig, BraceletPresimWrongNetworkThrows) {
  // Adversary built for one bracelet but executed on another: refused at
  // execution start (its pre-simulation would be meaningless).
  const BraceletNet a = bracelet(32);
  const BraceletNet b = bracelet(32);
  EXPECT_THROW(
      Execution(b.net, decay_local_factory(DecayLocalConfig{}),
                std::make_shared<LocalBroadcastProblem>(b.net, b.heads_a),
                std::make_unique<BraceletPresimOblivious>(a), {1, 10, {}}),
      ContractViolation);
}

TEST(AdversaryDeterminism, ObliviousChoicesReplayPerSeed) {
  // Same engine seed -> same adversary stream -> identical iid edge draws.
  Rng grng(5);
  const DualGraph net = with_random_gprime(ring_graph(12), 0.3, grng);
  const auto run_pattern = [&](std::uint64_t seed) {
    Execution exec(net, decay_local_factory(DecayLocalConfig{}),
                   std::make_shared<AssignmentProblem>(net.n(), -1,
                                                       std::vector<int>{0}),
                   std::make_unique<RandomIidEdges>(0.5), {seed, 20, {}});
    exec.run();
    std::vector<std::int64_t> counts;
    for (const auto& rec : exec.history().records()) {
      counts.push_back(rec.activated_count);
    }
    return counts;
  };
  EXPECT_EQ(run_pattern(9), run_pattern(9));
  EXPECT_NE(run_pattern(9), run_pattern(10));
}

TEST(AdversaryDeterminism, DenseSparseThresholdResolvesFromNetworkSize) {
  const DualCliqueNet dc = dual_clique(64);
  auto adversary = std::make_unique<DenseSparseOnline>(DenseSparseConfig{2.0});
  auto* ptr = adversary.get();
  Execution exec(dc.net, decay_global_factory(DecayGlobalConfig::fast()),
                 std::make_shared<GlobalBroadcastProblem>(dc.net, 0),
                 std::move(adversary), {1, 5, {}});
  EXPECT_DOUBLE_EQ(ptr->threshold(), 2.0 * clog2(64));
}

TEST(AdversaryDeterminism, FlickerPhasePattern) {
  Graph g = line_graph(3);
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  Execution exec(net, decay_local_factory(DecayLocalConfig{}),
                 std::make_shared<AssignmentProblem>(3, -1,
                                                     std::vector<int>{0}),
                 std::make_unique<FlickerEdges>(2, 3), {1, 10, {}});
  exec.run();
  const std::vector<EdgeSet::Kind> expected{
      EdgeSet::Kind::all, EdgeSet::Kind::all, EdgeSet::Kind::none,
      EdgeSet::Kind::none, EdgeSet::Kind::none, EdgeSet::Kind::all,
      EdgeSet::Kind::all, EdgeSet::Kind::none, EdgeSet::Kind::none,
      EdgeSet::Kind::none};
  for (int r = 0; r < 10; ++r) {
    EXPECT_EQ(exec.history().round(r).activated,
              expected[static_cast<std::size_t>(r)])
        << "round " << r;
  }
}

TEST(AdversaryDeterminism, BraceletPresimScheduleIsCommittedUpFront) {
  const BraceletNet br = bracelet(128);
  auto adversary = std::make_unique<BraceletPresimOblivious>(
      br, BraceletPresimConfig{0.3, true});
  auto* ptr = adversary.get();
  Execution exec(br.net, decay_local_factory(DecayLocalConfig{}),
                 std::make_shared<LocalBroadcastProblem>(br.net, br.heads_a),
                 std::move(adversary), {1, 1, {}});
  // Schedule exists before any round executes.
  EXPECT_EQ(static_cast<int>(ptr->dense_schedule().size()), br.band_len);
  const std::vector<char> before = ptr->dense_schedule();
  exec.run();
  EXPECT_EQ(ptr->dense_schedule(), before);
}

}  // namespace
}  // namespace dualcast
