// GeoLocalBroadcast (§4.3): stage structure, seed dissemination (Lemmas
// 4.7-4.9), and end-to-end correctness on geographic graphs against
// oblivious adversaries.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "adversary/static_adversaries.hpp"
#include "core/factories.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace dualcast {
namespace {

using testing::run_local;

GeoLocalConfig test_config() {
  GeoLocalConfig cfg = GeoLocalConfig::fast();
  return cfg;
}

GeoNet make_geo(int side_nodes, double spacing, std::uint64_t seed) {
  Rng rng(seed);
  return jittered_grid_geo(side_nodes, side_nodes, spacing, 0.05, 2.0, rng);
}

std::vector<int> every_kth(int n, int k) {
  std::vector<int> out;
  for (int v = 0; v < n; v += k) out.push_back(v);
  return out;
}

TEST(GeoLocal, StageLayoutMatchesConfig) {
  const GeoNet geo = make_geo(6, 0.6, 3);
  Execution exec(geo.net, geo_local_factory(test_config()),
                 std::make_shared<LocalBroadcastProblem>(
                     geo.net, every_kth(geo.net.n(), 4)),
                 std::make_unique<NoExtraEdges>(), {1, 10, {}});
  const auto* proc = dynamic_cast<const GeoLocalBroadcast*>(&exec.process(0));
  ASSERT_NE(proc, nullptr);
  const int logn = clog2(static_cast<std::uint64_t>(geo.net.n()));
  EXPECT_EQ(proc->phases(), clog2(static_cast<std::uint64_t>(geo.net.max_degree())));
  EXPECT_EQ(proc->phase_length(), 1 + logn * logn);
  EXPECT_EQ(proc->init_length(), proc->phases() * proc->phase_length());
  EXPECT_EQ(proc->iterations(), logn * logn);
  EXPECT_EQ(proc->total_length(),
            proc->init_length() + proc->iterations() * proc->iteration_length());
}

TEST(GeoLocal, EveryNodeCommitsBySomePhase) {
  const GeoNet geo = make_geo(8, 0.5, 5);
  Execution exec(geo.net, geo_local_factory(test_config()),
                 std::make_shared<LocalBroadcastProblem>(
                     geo.net, every_kth(geo.net.n(), 5)),
                 std::make_unique<NoExtraEdges>(), {2, 1 << 20, {}});
  const auto* proc0 = dynamic_cast<const GeoLocalBroadcast*>(&exec.process(0));
  ASSERT_NE(proc0, nullptr);
  const int init_len = proc0->init_length();
  for (int r = 0; r < init_len && !exec.done(); ++r) exec.step();
  for (int v = 0; v < geo.net.n(); ++v) {
    const auto* proc = dynamic_cast<const GeoLocalBroadcast*>(&exec.process(v));
    ASSERT_NE(proc, nullptr);
    EXPECT_TRUE(proc->committed()) << "node " << v << " has no seed";
  }
}

TEST(GeoLocal, SeedDiversityPerNeighborhoodIsLogarithmic) {
  // Lemma 4.9: no node neighbors more than O(log n) unique seeds in G'.
  const GeoNet geo = make_geo(10, 0.45, 7);
  Execution exec(geo.net, geo_local_factory(test_config()),
                 std::make_shared<LocalBroadcastProblem>(
                     geo.net, every_kth(geo.net.n(), 4)),
                 std::make_unique<NoExtraEdges>(), {3, 1 << 20, {}});
  const auto* proc0 = dynamic_cast<const GeoLocalBroadcast*>(&exec.process(0));
  ASSERT_NE(proc0, nullptr);
  for (int r = 0; r < proc0->init_length() && !exec.done(); ++r) exec.step();

  std::vector<int> origin(static_cast<std::size_t>(geo.net.n()));
  for (int v = 0; v < geo.net.n(); ++v) {
    const auto* proc = dynamic_cast<const GeoLocalBroadcast*>(&exec.process(v));
    ASSERT_TRUE(proc->committed());
    origin[static_cast<std::size_t>(v)] = proc->seed_origin();
  }
  const int logn = clog2(static_cast<std::uint64_t>(geo.net.n()));
  int worst = 0;
  for (int v = 0; v < geo.net.n(); ++v) {
    std::set<int> seeds;
    seeds.insert(origin[static_cast<std::size_t>(v)]);
    for (const int w : geo.net.gprime().neighbors(v)) {
      seeds.insert(origin[static_cast<std::size_t>(w)]);
    }
    worst = std::max(worst, static_cast<int>(seeds.size()));
  }
  // O(log n) with a generous constant; the point is that it is far below
  // the neighborhood size itself.
  EXPECT_LE(worst, 8 * logn);
  EXPECT_LT(worst, geo.net.max_degree() + 1);
}

TEST(GeoLocal, SeedMessagesOnlyDuringInitStage) {
  const GeoNet geo = make_geo(6, 0.6, 9);
  Execution exec(geo.net, geo_local_factory(test_config()),
                 std::make_shared<LocalBroadcastProblem>(
                     geo.net, every_kth(geo.net.n(), 3)),
                 std::make_unique<NoExtraEdges>(), {4, 1 << 20, {}});
  const auto* proc0 = dynamic_cast<const GeoLocalBroadcast*>(&exec.process(0));
  const int init_len = proc0->init_length();
  const int total = proc0->total_length();
  while (!exec.done() && exec.round() < total) exec.step();
  for (int r = 0; r < exec.history().rounds(); ++r) {
    for (const auto& m : exec.history().round(r).sent) {
      if (r < init_len) {
        EXPECT_EQ(m.kind, MessageKind::seed) << "round " << r;
      } else {
        EXPECT_EQ(m.kind, MessageKind::data) << "round " << r;
      }
    }
  }
}

struct GeoCase {
  int side;
  double spacing;
  int b_stride;
  int adversary;  // 0 none, 1 all, 2 iid, 3 flicker
};

class GeoLocalCorrectness : public ::testing::TestWithParam<GeoCase> {};

TEST_P(GeoLocalCorrectness, SolvesWhpAgainstObliviousSuite) {
  const auto& param = GetParam();
  const GeoNet geo = make_geo(param.side, param.spacing, 11);
  const std::vector<int> b = every_kth(geo.net.n(), param.b_stride);
  const auto make_adversary = [&]() -> std::unique_ptr<LinkProcess> {
    switch (param.adversary) {
      case 0: return std::make_unique<NoExtraEdges>();
      case 1: return std::make_unique<AllExtraEdges>();
      case 2: return std::make_unique<RandomIidEdges>(0.5);
      default: return std::make_unique<FlickerEdges>(2, 3);
    }
  };
  int solved = 0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    const RunResult result =
        run_local(geo.net, geo_local_factory(test_config()), make_adversary(),
                  b, 6000 + static_cast<std::uint64_t>(t),
                  /*max_rounds=*/1 << 20);
    solved += result.solved ? 1 : 0;
  }
  EXPECT_GE(solved, trials - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeoLocalCorrectness,
    ::testing::Values(GeoCase{6, 0.6, 3, 0}, GeoCase{6, 0.6, 3, 1},
                      GeoCase{6, 0.6, 3, 2}, GeoCase{6, 0.6, 3, 3},
                      GeoCase{8, 0.45, 4, 2}, GeoCase{5, 0.8, 2, 2}));

TEST(GeoLocal, PrivateSeedAblationStillSolvesProtocolModel) {
  GeoLocalConfig cfg = test_config();
  cfg.shared_seeds = false;
  const GeoNet geo = make_geo(6, 0.6, 13);
  const RunResult result = run_local(
      geo.net, geo_local_factory(cfg), std::make_unique<NoExtraEdges>(),
      every_kth(geo.net.n(), 3), 21, /*max_rounds=*/1 << 20);
  EXPECT_TRUE(result.solved);
}

TEST(GeoLocal, PrivateSeedAblationSkipsInit) {
  GeoLocalConfig cfg = test_config();
  cfg.shared_seeds = false;
  const GeoNet geo = make_geo(5, 0.7, 15);
  Execution exec(geo.net, geo_local_factory(cfg),
                 std::make_shared<LocalBroadcastProblem>(
                     geo.net, every_kth(geo.net.n(), 3)),
                 std::make_unique<NoExtraEdges>(), {5, 100, {}});
  const auto* proc = dynamic_cast<const GeoLocalBroadcast*>(&exec.process(0));
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->init_length(), 0);
  EXPECT_TRUE(proc->committed());
}

TEST(GeoLocal, OnlyBNodesTransmitInBroadcastStage) {
  const GeoNet geo = make_geo(6, 0.6, 17);
  const std::vector<int> b = every_kth(geo.net.n(), 4);
  const std::set<int> b_set(b.begin(), b.end());
  Execution exec(geo.net, geo_local_factory(test_config()),
                 std::make_shared<LocalBroadcastProblem>(geo.net, b),
                 std::make_unique<NoExtraEdges>(), {6, 1 << 20, {}});
  const auto* proc0 = dynamic_cast<const GeoLocalBroadcast*>(&exec.process(0));
  const int init_len = proc0->init_length();
  const int total = proc0->total_length();
  while (!exec.done() && exec.round() < total) exec.step();
  for (int r = init_len; r < exec.history().rounds(); ++r) {
    for (const int v : exec.history().round(r).transmitters) {
      EXPECT_TRUE(b_set.count(v)) << "non-B node " << v
                                  << " transmitted in broadcast round " << r;
    }
  }
}

TEST(GeoLocal, SameSeedNodesMakeSameParticipationDecision) {
  // All B nodes that committed to the same seed must transmit only in
  // iterations where that seed participates. We check a weaker observable
  // consequence: in any single broadcast round, the set of *seeds* with a
  // transmitting member is identical across repeated runs with the same
  // master seed (determinism), and nodes sharing a seed never contradict
  // each other's participation within an iteration.
  const GeoNet geo = make_geo(7, 0.5, 19);
  const std::vector<int> b = every_kth(geo.net.n(), 2);
  Execution exec(geo.net, geo_local_factory(test_config()),
                 std::make_shared<LocalBroadcastProblem>(geo.net, b),
                 std::make_unique<NoExtraEdges>(), {7, 1 << 20, {}});
  const auto* proc0 = dynamic_cast<const GeoLocalBroadcast*>(&exec.process(0));
  const int init_len = proc0->init_length();
  const int iter_len = proc0->iteration_length();
  const int total = proc0->total_length();
  while (!exec.done() && exec.round() < total) exec.step();

  std::vector<int> origin(static_cast<std::size_t>(geo.net.n()), -1);
  for (int v = 0; v < geo.net.n(); ++v) {
    const auto* proc = dynamic_cast<const GeoLocalBroadcast*>(&exec.process(v));
    if (proc->committed()) origin[static_cast<std::size_t>(v)] = proc->seed_origin();
  }

  // For each iteration, participation per seed-origin must be consistent:
  // if any member of a seed group transmits during the iteration, the
  // iteration's participation bit for that seed is 1 — there must be no
  // iteration where a group member transmits while the group's decision
  // derived from another member's rounds says otherwise. Observable proxy:
  // group together rounds of one iteration; a seed group either has some
  // transmissions or none, never "some nodes every iteration regardless".
  std::map<std::pair<int, int>, std::set<int>> tx_by_iter_seed;
  for (int r = init_len; r < exec.history().rounds(); ++r) {
    const int iter = (r - init_len) / iter_len;
    for (const int v : exec.history().round(r).transmitters) {
      tx_by_iter_seed[{iter, origin[static_cast<std::size_t>(v)]}].insert(v);
    }
  }
  // Sanity: some iterations have transmissions.
  EXPECT_FALSE(tx_by_iter_seed.empty());
}

}  // namespace
}  // namespace dualcast
