// DecayGlobalBroadcast: correctness in the protocol model and against
// oblivious adversaries, schedule structure, and inspector consistency.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "adversary/static_adversaries.hpp"
#include "core/factories.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"

namespace dualcast {
namespace {

using testing::median_rounds;
using testing::run_global;

// --------------------------------------------------------------------------
// Correctness sweeps (parameterized property tests).
// --------------------------------------------------------------------------

struct GlobalCase {
  const char* topology;
  int n;
  ScheduleKind kind;
};

class GlobalDecayCorrectness : public ::testing::TestWithParam<GlobalCase> {};

Graph build_topology(const char* name, int n, Rng& rng) {
  const std::string t = name;
  if (t == "line") return line_graph(n);
  if (t == "ring") return ring_graph(n);
  if (t == "star") return star_graph(n);
  if (t == "complete") return complete_graph(n);
  if (t == "tree") return random_tree(n, rng);
  if (t == "grid") {
    const int side = static_cast<int>(std::sqrt(n));
    return grid_graph(side, side);
  }
  ADD_FAILURE() << "unknown topology " << name;
  return line_graph(2);
}

TEST_P(GlobalDecayCorrectness, SolvesWhpInProtocolModel) {
  const auto& param = GetParam();
  Rng topo_rng(99);
  const Graph g = build_topology(param.topology, param.n, topo_rng);
  const DualGraph net = DualGraph::protocol(g);
  const int max_rounds = 600 * (net.g().diameter() + 20);

  int solved = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const RunResult result =
        run_global(net, decay_global_factory(DecayGlobalConfig::fast(param.kind)),
                   std::make_unique<NoExtraEdges>(), /*source=*/0,
                   /*seed=*/1000 + static_cast<std::uint64_t>(t), max_rounds);
    solved += result.solved ? 1 : 0;
  }
  EXPECT_GE(solved, trials - 1)
      << param.topology << " n=" << param.n << " kind="
      << (param.kind == ScheduleKind::fixed ? "fixed" : "permuted");
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, GlobalDecayCorrectness,
    ::testing::Values(GlobalCase{"line", 32, ScheduleKind::permuted},
                      GlobalCase{"line", 32, ScheduleKind::fixed},
                      GlobalCase{"ring", 48, ScheduleKind::permuted},
                      GlobalCase{"star", 64, ScheduleKind::permuted},
                      GlobalCase{"complete", 64, ScheduleKind::permuted},
                      GlobalCase{"complete", 64, ScheduleKind::fixed},
                      GlobalCase{"grid", 64, ScheduleKind::permuted},
                      GlobalCase{"tree", 64, ScheduleKind::permuted}));

// --------------------------------------------------------------------------
// Oblivious dual graph model (Theorem 4.1 regime).
// --------------------------------------------------------------------------

class ObliviousAdversaryParam : public ::testing::TestWithParam<int> {};

TEST_P(ObliviousAdversaryParam, PermutedDecaySolvesOnDualClique) {
  const int adversary_id = GetParam();
  const DualCliqueNet dc = dual_clique(64, /*bridge_index=*/7);
  const auto make_adversary = [&]() -> std::unique_ptr<LinkProcess> {
    switch (adversary_id) {
      case 0: return std::make_unique<NoExtraEdges>();
      case 1: return std::make_unique<AllExtraEdges>();
      case 2: return std::make_unique<RandomIidEdges>(0.5);
      case 3: return std::make_unique<FlickerEdges>(3, 5);
    }
    return nullptr;
  };
  int solved = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const RunResult result = run_global(
        dc.net, decay_global_factory(DecayGlobalConfig::fast()),
        make_adversary(), /*source=*/3,
        /*seed=*/7000 + static_cast<std::uint64_t>(t), /*max_rounds=*/20000);
    solved += result.solved ? 1 : 0;
  }
  EXPECT_GE(solved, trials - 1) << "adversary " << adversary_id;
}

INSTANTIATE_TEST_SUITE_P(AdversarySuite, ObliviousAdversaryParam,
                         ::testing::Values(0, 1, 2, 3));

TEST(GlobalDecay, RoundsGrowWithDiameter) {
  // O(D log n + log² n): on lines, rounds should scale ~linearly in D.
  const auto run_line = [&](int n) {
    const DualGraph net = DualGraph::protocol(line_graph(n));
    return median_rounds(5, 31, 200000, [&](std::uint64_t seed) {
      return run_global(net,
                        decay_global_factory(DecayGlobalConfig::fast()),
                        std::make_unique<NoExtraEdges>(), 0, seed, 200000);
    });
  };
  const double r32 = run_line(32);
  const double r128 = run_line(128);
  EXPECT_GT(r128, 2.0 * r32);
  EXPECT_LT(r128, 10.0 * r32);
}

// --------------------------------------------------------------------------
// Protocol structure.
// --------------------------------------------------------------------------

TEST(GlobalDecay, SourceTransmitsExactlyOnce) {
  const DualGraph net = DualGraph::protocol(line_graph(8));
  Execution exec(net, decay_global_factory(DecayGlobalConfig::fast()),
                 std::make_shared<GlobalBroadcastProblem>(net, 0),
                 std::make_unique<NoExtraEdges>(), {5, 3000, {}});
  exec.run();
  int source_transmissions = 0;
  for (const auto& rec : exec.history().records()) {
    for (const int v : rec.transmitters) {
      if (v == 0) ++source_transmissions;
    }
  }
  EXPECT_EQ(source_transmissions, 1);
  // And it was in round 0.
  ASSERT_FALSE(exec.history().round(0).transmitters.empty());
  EXPECT_EQ(exec.history().round(0).transmitters[0], 0);
}

TEST(GlobalDecay, HoldersOnlyTransmitInsideAlignedWindow) {
  const DualGraph net = DualGraph::protocol(star_graph(16));
  Execution exec(net, decay_global_factory(DecayGlobalConfig::fast()),
                 std::make_shared<GlobalBroadcastProblem>(net, 1),
                 std::make_unique<NoExtraEdges>(), {7, 5000, {}});
  exec.run();
  // Reconstruct per-node first-transmission rounds; all non-source
  // transmissions must happen at or after a gamma*L boundary following their
  // first reception.
  const auto* proc =
      dynamic_cast<const DecayGlobalBroadcast*>(&exec.process(0));
  ASSERT_NE(proc, nullptr);
  const int period = proc->call_length();
  for (int r = 0; r < exec.history().rounds(); ++r) {
    for (const int v : exec.history().round(r).transmitters) {
      if (v == 1) continue;  // source
      const int received = exec.first_receive_round()[static_cast<std::size_t>(v)];
      ASSERT_GE(received, 0);
      EXPECT_GT(r, received);
      const int window_start = ((received + 1 + period - 1) / period) * period;
      EXPECT_GE(r, window_start) << "node " << v << " round " << r;
    }
  }
}

TEST(GlobalDecay, PermutedMessageCarriesSharedBits) {
  const DualGraph net = DualGraph::protocol(line_graph(4));
  Execution exec(net, decay_global_factory(DecayGlobalConfig::fast()),
                 std::make_shared<GlobalBroadcastProblem>(net, 0),
                 std::make_unique<NoExtraEdges>(), {9, 3000, {}});
  exec.step();
  const auto& sent = exec.history().round(0).sent;
  ASSERT_EQ(sent.size(), 1u);
  ASSERT_NE(sent[0].shared_bits, nullptr);
  EXPECT_GT(sent[0].shared_bits->size(), 0u);
}

TEST(GlobalDecay, FixedMessageCarriesNoBits) {
  const DualGraph net = DualGraph::protocol(line_graph(4));
  Execution exec(
      net, decay_global_factory(DecayGlobalConfig::fast(ScheduleKind::fixed)),
      std::make_shared<GlobalBroadcastProblem>(net, 0),
      std::make_unique<NoExtraEdges>(), {9, 3000, {}});
  exec.step();
  const auto& sent = exec.history().round(0).sent;
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].shared_bits, nullptr);
}

TEST(GlobalDecay, InspectorNeverContradictsBehavior) {
  // Property: a node that transmits in round r must have had
  // transmit_probability(r) > 0 at the start of r.
  const DualCliqueNet dc = dual_clique(32);
  Execution exec(dc.net, decay_global_factory(DecayGlobalConfig::fast()),
                 std::make_shared<GlobalBroadcastProblem>(dc.net, 1),
                 std::make_unique<RandomIidEdges>(0.3), {11, 4000, {}});
  while (!exec.done()) {
    const int r = exec.round();
    std::vector<double> probs(static_cast<std::size_t>(dc.net.n()));
    for (int v = 0; v < dc.net.n(); ++v) {
      probs[static_cast<std::size_t>(v)] =
          exec.inspector().transmit_probability(v, r);
    }
    exec.step();
    for (const int v : exec.history().round(r).transmitters) {
      EXPECT_GT(probs[static_cast<std::size_t>(v)], 0.0)
          << "node " << v << " transmitted in round " << r
          << " despite zero announced probability";
    }
  }
  EXPECT_TRUE(exec.solved());
}

TEST(GlobalDecay, UnboundedCallsKeepTransmitting) {
  DecayGlobalConfig cfg = DecayGlobalConfig::fast();
  cfg.calls = DecayGlobalConfig::kUnbounded;
  const DualGraph net = DualGraph::protocol(complete_graph(8));
  Execution exec(net, decay_global_factory(cfg),
                 std::make_shared<AssignmentProblem>(8, 0, std::vector<int>{}),
                 std::make_unique<NoExtraEdges>(), {13, 4000, {}});
  exec.run();
  // Transmissions should appear in the last tenth of the run.
  std::int64_t late = 0;
  for (int r = 9 * exec.history().rounds() / 10; r < exec.history().rounds();
       ++r) {
    late += static_cast<std::int64_t>(exec.history().round(r).transmitters.size());
  }
  EXPECT_GT(late, 0);
}

TEST(GlobalDecay, PaperProfileSolvesSmallInstance) {
  const DualGraph net = DualGraph::protocol(line_graph(16));
  const RunResult result = run_global(
      net, decay_global_factory(DecayGlobalConfig::paper()),
      std::make_unique<NoExtraEdges>(), 0, /*seed=*/17, /*max_rounds=*/200000);
  EXPECT_TRUE(result.solved);
}

}  // namespace
}  // namespace dualcast
