// DecayLocalBroadcast: the static-model local broadcast baseline.

#include <gtest/gtest.h>

#include "adversary/static_adversaries.hpp"
#include "core/factories.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace dualcast {
namespace {

using testing::run_local;

struct LocalCase {
  const char* topology;
  int n;
  int b_stride;  ///< every b_stride-th node joins B
  ScheduleKind kind;
};

class LocalDecayCorrectness : public ::testing::TestWithParam<LocalCase> {};

TEST_P(LocalDecayCorrectness, SolvesWhpInProtocolModel) {
  const auto& param = GetParam();
  Rng rng(5);
  Graph g;
  const std::string t = param.topology;
  if (t == "line") {
    g = line_graph(param.n);
  } else if (t == "star") {
    g = star_graph(param.n);
  } else if (t == "complete") {
    g = complete_graph(param.n);
  } else {
    g = random_tree(param.n, rng);
  }
  const DualGraph net = DualGraph::protocol(g);
  std::vector<int> b;
  for (int v = 0; v < param.n; v += param.b_stride) b.push_back(v);

  int solved = 0;
  const int trials = 10;
  for (int i = 0; i < trials; ++i) {
    const RunResult result = run_local(
        net, decay_local_factory(DecayLocalConfig{param.kind, 0, 0}),
        std::make_unique<NoExtraEdges>(), b,
        2000 + static_cast<std::uint64_t>(i), /*max_rounds=*/20000);
    solved += result.solved ? 1 : 0;
  }
  EXPECT_GE(solved, trials - 1) << t << " n=" << param.n;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LocalDecayCorrectness,
    ::testing::Values(LocalCase{"line", 32, 4, ScheduleKind::fixed},
                      LocalCase{"line", 32, 1, ScheduleKind::fixed},
                      LocalCase{"star", 48, 2, ScheduleKind::fixed},
                      LocalCase{"complete", 32, 2, ScheduleKind::fixed},
                      LocalCase{"complete", 32, 2, ScheduleKind::permuted},
                      LocalCase{"tree", 64, 3, ScheduleKind::fixed},
                      LocalCase{"tree", 64, 3, ScheduleKind::permuted}));

TEST(LocalDecay, OnlyBNodesTransmit) {
  const DualGraph net = DualGraph::protocol(line_graph(16));
  const std::vector<int> b{2, 9};
  Execution exec(net, decay_local_factory(DecayLocalConfig{}),
                 std::make_shared<LocalBroadcastProblem>(net, b),
                 std::make_unique<NoExtraEdges>(), {3, 500, {}});
  exec.run();
  for (const auto& rec : exec.history().records()) {
    for (const int v : rec.transmitters) {
      EXPECT_TRUE(v == 2 || v == 9) << "non-B node " << v << " transmitted";
    }
  }
}

TEST(LocalDecay, LadderDefaultsToDegreeNotN) {
  // On a bounded-degree graph the ladder must track Δ, not n: that is what
  // makes the baseline O(log n log Δ) rather than O(log n log n).
  const DualGraph net = DualGraph::protocol(line_graph(256));  // Δ = 2
  Execution exec(net, decay_local_factory(DecayLocalConfig{}),
                 std::make_shared<LocalBroadcastProblem>(
                     net, std::vector<int>{100}),
                 std::make_unique<NoExtraEdges>(), {3, 50, {}});
  const auto* proc = dynamic_cast<const DecayLocalBroadcast*>(&exec.process(100));
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->ladder(), clog2(2 * 2));
}

TEST(LocalDecay, BNodeAdjacentToBNodeStillGetsServed) {
  // Adjacent B nodes must also receive (they are in R): half-duplex means
  // they can only hear while not transmitting.
  const DualGraph net = DualGraph::protocol(line_graph(8));
  int solved = 0;
  for (int t = 0; t < 10; ++t) {
    const RunResult result = run_local(
        net, decay_local_factory(DecayLocalConfig{}),
        std::make_unique<NoExtraEdges>(), {3, 4},
        400 + static_cast<std::uint64_t>(t), 20000);
    solved += result.solved ? 1 : 0;
  }
  EXPECT_GE(solved, 9);
}

TEST(LocalDecay, SolvesUnderRandomLossObliviousAdversary) {
  Rng rng(77);
  const GeoNet geo = jittered_grid_geo(6, 6, 0.6, 0.05, 2.0, rng);
  std::vector<int> b;
  for (int v = 0; v < geo.net.n(); v += 3) b.push_back(v);
  int solved = 0;
  for (int t = 0; t < 10; ++t) {
    const RunResult result = run_local(
        geo.net, decay_local_factory(DecayLocalConfig{}),
        std::make_unique<RandomIidEdges>(0.4), b,
        500 + static_cast<std::uint64_t>(t), 40000);
    solved += result.solved ? 1 : 0;
  }
  EXPECT_GE(solved, 9);
}

TEST(LocalDecay, StrictCreditAlsoSolvableInProtocolModel) {
  const DualGraph net = DualGraph::protocol(star_graph(24));
  const RunResult result = run_local(
      net, decay_local_factory(DecayLocalConfig{}),
      std::make_unique<NoExtraEdges>(), {0, 5}, 11, 30000,
      ReceiverCredit::g_neighbor_only);
  EXPECT_TRUE(result.solved);
}

TEST(LocalDecay, InspectorMatchesLadderProbabilities) {
  const DualGraph net = DualGraph::protocol(line_graph(8));
  Execution exec(net, decay_local_factory(DecayLocalConfig{}),
                 std::make_shared<LocalBroadcastProblem>(
                     net, std::vector<int>{4}),
                 std::make_unique<NoExtraEdges>(), {3, 50, {}});
  const auto* proc = dynamic_cast<const DecayLocalBroadcast*>(&exec.process(4));
  ASSERT_NE(proc, nullptr);
  const int ladder = proc->ladder();
  for (int r = 0; r < 3 * ladder; ++r) {
    EXPECT_DOUBLE_EQ(exec.inspector().transmit_probability(4, r),
                     pow2_neg(fixed_decay_index(r, ladder)));
    EXPECT_DOUBLE_EQ(exec.inspector().transmit_probability(0, r), 0.0);
  }
}

}  // namespace
}  // namespace dualcast
