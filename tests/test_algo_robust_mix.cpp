// RobustMixBroadcast: the round-robin/decay interleave must inherit both
// guarantees — polylog completion against oblivious adversaries AND a
// deterministic O(n·D) ceiling against every adversary class.

#include <gtest/gtest.h>

#include "adversary/dense_sparse.hpp"
#include "adversary/offline_collider.hpp"
#include "adversary/static_adversaries.hpp"
#include "core/robust_mix.hpp"
#include "core/factories.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"

namespace dualcast {
namespace {

using testing::median_rounds;
using testing::run_global;

TEST(RobustMix, SolvesInProtocolModel) {
  const DualGraph net = DualGraph::protocol(line_graph(24));
  int solved = 0;
  for (int t = 0; t < 8; ++t) {
    const RunResult result = run_global(
        net, robust_mix_factory(), std::make_unique<NoExtraEdges>(), 0,
        900 + static_cast<std::uint64_t>(t), 200000);
    solved += result.solved ? 1 : 0;
  }
  EXPECT_EQ(solved, 8);
}

class RobustMixAdversaryParam : public ::testing::TestWithParam<int> {};

TEST_P(RobustMixAdversaryParam, MeetsDeterministicCeilingOnDualClique) {
  // Even rounds are a round robin pass; on the constant-diameter dual clique
  // the message provably crosses within three interleaved passes: <= 6n + 2
  // rounds against ANY adversary.
  const int n = 64;
  const DualCliqueNet dc = dual_clique(n, n / 4);
  std::unique_ptr<LinkProcess> adversary;
  switch (GetParam()) {
    case 0: adversary = std::make_unique<NoExtraEdges>(); break;
    case 1: adversary = std::make_unique<RandomIidEdges>(0.5); break;
    case 2:
      adversary = std::make_unique<DenseSparseOnline>(DenseSparseConfig{0.5});
      break;
    default: adversary = std::make_unique<GreedyColliderOffline>(); break;
  }
  const RunResult result =
      run_global(dc.net, robust_mix_factory(), std::move(adversary),
                 /*source=*/1, /*seed=*/5, /*max_rounds=*/8 * n);
  ASSERT_TRUE(result.solved) << "adversary " << GetParam();
  EXPECT_LE(result.rounds, 6 * n + 2);
}

INSTANTIATE_TEST_SUITE_P(Adversaries, RobustMixAdversaryParam,
                         ::testing::Values(0, 1, 2, 3));

TEST(RobustMix, OpportunisticallyFastWhenObliviousAdversary) {
  // Against benign oblivious behavior the decay half finishes long before
  // the deterministic ceiling.
  const int n = 512;
  const DualCliqueNet dc = dual_clique(n, n / 4);
  const double rounds = median_rounds(5, 42, 8 * n, [&](std::uint64_t seed) {
    return run_global(dc.net, robust_mix_factory(),
                      std::make_unique<RandomIidEdges>(0.5), 1, seed, 8 * n);
  });
  EXPECT_LT(rounds, n / 2.0) << "mix should beat the robin pass";
}

TEST(RobustMix, RobinHalfTransmitsOnlyInItsSlots) {
  const int n = 16;
  const DualCliqueNet dc = dual_clique(n);
  Execution exec(dc.net, robust_mix_factory(),
                 std::make_shared<GlobalBroadcastProblem>(dc.net, 0),
                 std::make_unique<NoExtraEdges>(), {3, 200, {}});
  exec.run();
  for (int r = 0; r < exec.history().rounds(); r += 2) {
    // Even (robin) rounds: transmitter id must equal the half-clock slot.
    for (const int v : exec.history().round(r).transmitters) {
      EXPECT_EQ((r / 2) % n, v) << "round " << r;
    }
  }
}

TEST(RobustMix, MessageLearnedInOneHalfSeedsTheOther) {
  // A node that first receives during a robin round must subsequently
  // transmit in decay rounds too (both halves share receptions).
  const int n = 16;
  const DualCliqueNet dc = dual_clique(n);
  Execution exec(dc.net, robust_mix_factory(),
                 std::make_shared<GlobalBroadcastProblem>(dc.net, 0),
                 std::make_unique<NoExtraEdges>(), {7, 600, {}});
  exec.run();
  ASSERT_TRUE(exec.solved());
  int odd_round_transmissions = 0;
  for (int r = 1; r < exec.history().rounds(); r += 2) {
    odd_round_transmissions +=
        static_cast<int>(exec.history().round(r).transmitters.size());
  }
  EXPECT_GT(odd_round_transmissions, 0);
}

TEST(RobustMix, InspectorConsistentAcrossParities) {
  const int n = 16;
  const DualCliqueNet dc = dual_clique(n);
  Execution exec(dc.net, robust_mix_factory(),
                 std::make_shared<GlobalBroadcastProblem>(dc.net, 0),
                 std::make_unique<DenseSparseOnline>(DenseSparseConfig{1.0}),
                 {9, 400, {}});
  while (!exec.done()) {
    const int r = exec.round();
    std::vector<double> probs(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      probs[static_cast<std::size_t>(v)] =
          exec.inspector().transmit_probability(v, r);
    }
    exec.step();
    for (const int v : exec.history().round(r).transmitters) {
      EXPECT_GT(probs[static_cast<std::size_t>(v)], 0.0)
          << "node " << v << " round " << r;
    }
  }
  EXPECT_TRUE(exec.solved());
}

}  // namespace
}  // namespace dualcast
