// RoundRobinBroadcast: the deterministic O(n)/O(nD) upper bound that no
// adversary class can defeat.

#include <gtest/gtest.h>

#include "adversary/dense_sparse.hpp"
#include "adversary/offline_collider.hpp"
#include "adversary/static_adversaries.hpp"
#include "core/factories.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"

namespace dualcast {
namespace {

using testing::run_global;
using testing::run_local;

TEST(RoundRobin, TransmitsOnlyInOwnSlot) {
  const DualGraph net = DualGraph::protocol(complete_graph(8));
  Execution exec(net, round_robin_factory(RoundRobinConfig{true}),
                 std::make_shared<GlobalBroadcastProblem>(net, 3),
                 std::make_unique<NoExtraEdges>(), {1, 64, {}});
  exec.run();
  for (int r = 0; r < exec.history().rounds(); ++r) {
    for (const int v : exec.history().round(r).transmitters) {
      EXPECT_EQ(r % 8, v) << "node " << v << " outside its slot in round " << r;
    }
  }
}

TEST(RoundRobin, AtMostOneTransmitterPerRound) {
  const DualCliqueNet dc = dual_clique(16);
  Execution exec(dc.net, round_robin_factory(RoundRobinConfig{true}),
                 std::make_shared<GlobalBroadcastProblem>(dc.net, 0),
                 std::make_unique<GreedyColliderOffline>(), {1, 400, {}});
  exec.run();
  for (const auto& rec : exec.history().records()) {
    EXPECT_LE(rec.transmitters.size(), 1u);
  }
}

class RoundRobinAdversaryParam : public ::testing::TestWithParam<int> {};

std::unique_ptr<LinkProcess> adversary_by_id(int id) {
  switch (id) {
    case 0: return std::make_unique<NoExtraEdges>();
    case 1: return std::make_unique<AllExtraEdges>();
    case 2: return std::make_unique<RandomIidEdges>(0.5);
    case 3: return std::make_unique<GreedyColliderOffline>();
    case 4: return std::make_unique<DenseSparseOnline>(DenseSparseConfig{});
  }
  return nullptr;
}

TEST_P(RoundRobinAdversaryParam, GlobalSolvesOnDualCliqueInLinearRounds) {
  // Constant diameter: relay round robin crosses the bridge within ~3 passes
  // regardless of adversary class (no collisions are ever possible).
  const int n = 32;
  const DualCliqueNet dc = dual_clique(n, /*bridge_index=*/5);
  const RunResult result =
      run_global(dc.net, round_robin_factory(RoundRobinConfig{true}),
                 adversary_by_id(GetParam()), /*source=*/2, /*seed=*/7,
                 /*max_rounds=*/4 * n);
  EXPECT_TRUE(result.solved) << "adversary " << GetParam();
  EXPECT_LE(result.rounds, 3 * n);
}

TEST_P(RoundRobinAdversaryParam, LocalSolvesWithinOnePass) {
  // Every B node broadcasts alone once within n rounds; all receivers in R
  // are then served — against any adversary.
  const int n = 24;
  const DualCliqueNet dc = dual_clique(n);
  const RunResult result =
      run_local(dc.net, round_robin_factory(RoundRobinConfig{false}),
                adversary_by_id(GetParam()), dc.side_a, /*seed=*/9,
                /*max_rounds=*/2 * n);
  EXPECT_TRUE(result.solved) << "adversary " << GetParam();
  EXPECT_LE(result.rounds, n);
}

INSTANTIATE_TEST_SUITE_P(AllAdversaryClasses, RoundRobinAdversaryParam,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(RoundRobin, GlobalOnLineTakesAboutNPerHop) {
  const int n = 16;
  const DualGraph net = DualGraph::protocol(line_graph(n));
  const RunResult result =
      run_global(net, round_robin_factory(RoundRobinConfig{true}),
                 std::make_unique<NoExtraEdges>(), /*source=*/0, /*seed=*/3,
                 /*max_rounds=*/2 * n * n);
  ASSERT_TRUE(result.solved);
  // The message advances at least one hop per pass; with ids ordered along
  // the line it advances one hop per round after the first slot.
  EXPECT_LE(result.rounds, n * n);
  EXPECT_GE(result.rounds, n - 1);
}

TEST(RoundRobin, NonRelayNodesStaySilent) {
  const DualGraph net = DualGraph::protocol(line_graph(6));
  Execution exec(net, round_robin_factory(RoundRobinConfig{false}),
                 std::make_shared<LocalBroadcastProblem>(
                     net, std::vector<int>{2}),
                 std::make_unique<NoExtraEdges>(), {1, 30, {}});
  exec.run();
  for (const auto& rec : exec.history().records()) {
    for (const int v : rec.transmitters) EXPECT_EQ(v, 2);
  }
}

TEST(RoundRobin, DeterministicInspectorPredictions) {
  // Round robin is deterministic: the inspector's announced probabilities
  // are exactly 0 or 1 and match realized behavior.
  const DualCliqueNet dc = dual_clique(12);
  Execution exec(dc.net, round_robin_factory(RoundRobinConfig{true}),
                 std::make_shared<GlobalBroadcastProblem>(dc.net, 0),
                 std::make_unique<DenseSparseOnline>(DenseSparseConfig{}),
                 {1, 100, {}});
  while (!exec.done()) {
    const int r = exec.round();
    std::vector<double> probs(static_cast<std::size_t>(dc.net.n()));
    for (int v = 0; v < dc.net.n(); ++v) {
      probs[static_cast<std::size_t>(v)] =
          exec.inspector().transmit_probability(v, r);
      EXPECT_TRUE(probs[static_cast<std::size_t>(v)] == 0.0 ||
                  probs[static_cast<std::size_t>(v)] == 1.0);
    }
    exec.step();
    std::vector<int> predicted;
    for (int v = 0; v < dc.net.n(); ++v) {
      if (probs[static_cast<std::size_t>(v)] == 1.0) predicted.push_back(v);
    }
    EXPECT_EQ(predicted, exec.history().round(r).transmitters);
  }
  EXPECT_TRUE(exec.solved());
}

}  // namespace
}  // namespace dualcast
