#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/fit.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "analysis/trials.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dualcast {
namespace {

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> values{4, 2, 6, 8, 10};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.mean, 6.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.median, 6.0);
  EXPECT_NEAR(s.stddev, std::sqrt(10.0), 1e-12);  // sample variance = 10
}

TEST(Stats, SingleValue) {
  const Summary s = summarize({3.5});
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(Stats, EmptySampleRejected) {
  EXPECT_THROW(summarize({}), ContractViolation);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> values{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.5);
  EXPECT_THROW(quantile(values, 1.5), ContractViolation);
}

TEST(Fit, RecoversLinearShape) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 64; x <= 4096; x *= 2) {
    xs.push_back(x);
    ys.push_back(3.0 * x);
  }
  const auto ranked = rank_models(xs, ys, standard_models());
  EXPECT_EQ(ranked.front().model, "n");
  EXPECT_NEAR(ranked.front().scale, 3.0, 1e-9);
  EXPECT_NEAR(ranked.front().r2, 1.0, 1e-9);
}

TEST(Fit, RecoversNOverLogN) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 64; x <= 8192; x *= 2) {
    xs.push_back(x);
    ys.push_back(5.0 * x / std::log2(x));
  }
  EXPECT_EQ(best_fit_name(xs, ys), "n/log n");
}

TEST(Fit, RecoversLogSquared) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 64; x <= 8192; x *= 2) {
    xs.push_back(x);
    ys.push_back(7.0 * std::log2(x) * std::log2(x));
  }
  EXPECT_EQ(best_fit_name(xs, ys), "log^2 n");
}

TEST(Fit, RecoversSqrtOverLog) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 256; x <= 65536; x *= 4) {
    xs.push_back(x);
    ys.push_back(2.0 * std::sqrt(x) / std::log2(x));
  }
  EXPECT_EQ(best_fit_name(xs, ys), "sqrt(n)/log n");
}

TEST(Fit, ToleratesNoise) {
  Rng rng(3);
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 64; x <= 16384; x *= 2) {
    xs.push_back(x);
    ys.push_back(4.0 * x * (0.9 + 0.2 * rng.uniform01()));
  }
  EXPECT_EQ(best_fit_name(xs, ys), "n");
}

TEST(Fit, RejectsBadInput) {
  EXPECT_THROW(fit_model({}, {}, standard_models()[0]), ContractViolation);
  EXPECT_THROW(fit_model({1.0}, {0.0}, standard_models()[0]),
               ContractViolation);
}

TEST(Table, AlignedOutput) {
  Table table({"name", "rounds"});
  table.add_row({cell("decay"), cell(123)});
  table.add_row({cell("round-robin"), cell(7)});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("decay"), std::string::npos);
  EXPECT_NE(out.find("round-robin"), std::string::npos);
  EXPECT_NE(out.find("123"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table table({"a", "b"});
  table.add_row({cell(1), cell(2.5, 1)});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
}

TEST(Table, RowWidthEnforced) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({cell(1)}), ContractViolation);
}

TEST(Trials, CollectsAndSummarizes) {
  const TrialSet set = run_trials(10, 100, [](std::uint64_t seed) {
    return static_cast<double>(seed - 100);
  });
  EXPECT_EQ(set.values.size(), 10u);
  EXPECT_EQ(set.failures, 0);
  EXPECT_DOUBLE_EQ(set.summary.mean, 4.5);
  EXPECT_DOUBLE_EQ(set.success_rate(10), 1.0);
}

TEST(Trials, CountsFailures) {
  const TrialSet set = run_trials(10, 0, [](std::uint64_t seed) {
    return seed % 2 == 0 ? 1.0 : -1.0;
  });
  EXPECT_EQ(set.values.size(), 5u);
  EXPECT_EQ(set.failures, 5);
  EXPECT_DOUBLE_EQ(set.success_rate(10), 0.5);
  EXPECT_FALSE(set.all_failed());
}

}  // namespace
}  // namespace dualcast
