#include "core/decay_schedule.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace dualcast {
namespace {

TEST(FixedSchedule, CyclesTheLadder) {
  const int ladder = 4;
  for (int r = 0; r < 20; ++r) {
    const int i = fixed_decay_index(r, ladder);
    EXPECT_EQ(i, 1 + (r % ladder));
    EXPECT_GE(i, 1);
    EXPECT_LE(i, ladder);
  }
}

TEST(FixedSchedule, ProbabilityMatchesIndex) {
  for (int r = 0; r < 12; ++r) {
    EXPECT_DOUBLE_EQ(fixed_decay_probability(r, 4),
                     pow2_neg(fixed_decay_index(r, 4)));
  }
}

TEST(FixedSchedule, ContractChecks) {
  EXPECT_THROW(fixed_decay_index(-1, 4), ContractViolation);
  EXPECT_THROW(fixed_decay_index(0, 0), ContractViolation);
}

TEST(PermutedSchedule, DeterministicGivenBits) {
  Rng rng(3);
  const BitString bits = BitString::random(rng, 512);
  for (int r = 0; r < 50; ++r) {
    EXPECT_EQ(permuted_decay_index(bits, r, 8),
              permuted_decay_index(bits, r, 8));
  }
}

TEST(PermutedSchedule, IndicesInRange) {
  Rng rng(5);
  const BitString bits = BitString::random(rng, 512);
  for (const int ladder : {1, 2, 3, 7, 8, 13}) {
    for (int r = 0; r < 100; ++r) {
      const int i = permuted_decay_index(bits, r, ladder);
      ASSERT_GE(i, 1);
      ASSERT_LE(i, ladder);
    }
  }
}

TEST(PermutedSchedule, RequiresBits) {
  const BitString empty;
  EXPECT_THROW(permuted_decay_index(empty, 0, 4), ContractViolation);
}

TEST(PermutedSchedule, DifferentBitsDifferentSchedules) {
  Rng rng(7);
  const BitString a = BitString::random(rng, 1024);
  const BitString b = BitString::random(rng, 1024);
  int agreements = 0;
  const int rounds = 200;
  for (int r = 0; r < rounds; ++r) {
    if (permuted_decay_index(a, r, 8) == permuted_decay_index(b, r, 8)) {
      ++agreements;
    }
  }
  // Two independent schedules over 8 values agree on ~1/8 of the rounds.
  EXPECT_LT(agreements, rounds / 2);
}

TEST(PermutedSchedule, RoughlyUniformOverLadder) {
  Rng rng(11);
  const BitString bits = BitString::random(rng, 1 << 16);
  const int ladder = 8;
  std::map<int, int> counts;
  const int rounds = 20000;
  for (int r = 0; r < rounds; ++r) {
    ++counts[permuted_decay_index(bits, r, ladder)];
  }
  for (int i = 1; i <= ladder; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / rounds, 1.0 / ladder, 0.02)
        << "index " << i;
  }
}

TEST(ChunkWidth, CoversLadder) {
  EXPECT_EQ(schedule_chunk_width(1), 1);
  EXPECT_EQ(schedule_chunk_width(2), 2);
  EXPECT_EQ(schedule_chunk_width(8), 4);  // needs to span [0, 8]
  EXPECT_GE((1 << schedule_chunk_width(13)), 13);
}

}  // namespace
}  // namespace dualcast
