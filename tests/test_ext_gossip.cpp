// k-gossip extension: the problem monitor, the fair token scheduler, and
// end-to-end correctness across topologies, token counts, and adversaries.

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "adversary/dense_sparse.hpp"
#include "adversary/static_adversaries.hpp"
#include "core/gossip.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace dualcast {
namespace {

RunResult run_gossip(const DualGraph& net, std::vector<int> sources,
                     std::unique_ptr<LinkProcess> adversary,
                     std::uint64_t seed, int max_rounds,
                     GossipConfig config = {}) {
  Execution exec(net, gossip_factory(config),
                 std::make_shared<GossipProblem>(net, std::move(sources)),
                 std::move(adversary), {seed, max_rounds, {}});
  return exec.run();
}

TEST(GossipProblem, InitialKnowledgeAndMissingCount) {
  const DualGraph net = DualGraph::protocol(line_graph(4));
  const GossipProblem problem(net, {0, 2});
  EXPECT_EQ(problem.tokens(), 2);
  EXPECT_TRUE(problem.knows(0, 0));
  EXPECT_TRUE(problem.knows(2, 1));
  EXPECT_FALSE(problem.knows(0, 1));
  EXPECT_FALSE(problem.knows(3, 0));
  EXPECT_EQ(problem.missing(), 4 * 2 - 2);
}

TEST(GossipProblem, RejectsBadConfigurations) {
  const DualGraph net = DualGraph::protocol(line_graph(4));
  EXPECT_THROW(GossipProblem(net, {}), ContractViolation);
  EXPECT_THROW(GossipProblem(net, {4}), ContractViolation);
}

TEST(GossipProblem, SingleTokenDegeneratesToGlobalBroadcast) {
  const DualGraph net = DualGraph::protocol(star_graph(16));
  const RunResult result = run_gossip(
      net, {3}, std::make_unique<NoExtraEdges>(), 7, 20000);
  EXPECT_TRUE(result.solved);
}

struct GossipCase {
  const char* topology;
  int n;
  int k;
  ScheduleKind kind;
};

class GossipCorrectness : public ::testing::TestWithParam<GossipCase> {};

TEST_P(GossipCorrectness, AllTokensReachAllNodes) {
  const auto& param = GetParam();
  Rng rng(3);
  Graph g;
  const std::string t = param.topology;
  if (t == "line") {
    g = line_graph(param.n);
  } else if (t == "ring") {
    g = ring_graph(param.n);
  } else if (t == "complete") {
    g = complete_graph(param.n);
  } else {
    g = random_tree(param.n, rng);
  }
  const DualGraph net = DualGraph::protocol(g);
  std::vector<int> sources;
  for (int token = 0; token < param.k; ++token) {
    sources.push_back((token * param.n) / param.k);
  }
  int solved = 0;
  const int trials = 6;
  for (int i = 0; i < trials; ++i) {
    const RunResult result = run_gossip(
        net, sources, std::make_unique<NoExtraEdges>(),
        100 + static_cast<std::uint64_t>(i), 3000 * param.n,
        GossipConfig{param.kind, 0, 0});
    solved += result.solved ? 1 : 0;
  }
  EXPECT_GE(solved, trials - 1) << t << " n=" << param.n << " k=" << param.k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GossipCorrectness,
    ::testing::Values(GossipCase{"line", 16, 2, ScheduleKind::fixed},
                      GossipCase{"ring", 24, 3, ScheduleKind::fixed},
                      GossipCase{"complete", 32, 4, ScheduleKind::fixed},
                      // `permuted` = private per-node indices: correct only
                      // on bounded-degree graphs (see GossipConfig docs).
                      GossipCase{"line", 16, 2, ScheduleKind::permuted},
                      GossipCase{"tree", 32, 3, ScheduleKind::fixed},
                      GossipCase{"tree", 32, 3, ScheduleKind::permuted}));

TEST(Gossip, PrivatePermutationStallsOnHighDegreeGraphs) {
  // The coordination lesson of Lemma 4.2, observed in gossip: with private
  // per-node ladder indices on a complete graph there are no globally
  // sparse rounds, so a token held by a single node can take an order of
  // magnitude longer to first escape than under the common (fixed)
  // schedule. We compare median solve times directly.
  const DualGraph net = DualGraph::protocol(complete_graph(32));
  const std::vector<int> sources{0, 8, 16, 24};
  const auto median_for = [&](ScheduleKind kind) {
    return testing::median_rounds(5, 400, 100000, [&](std::uint64_t seed) {
      return run_gossip(net, sources, std::make_unique<NoExtraEdges>(), seed,
                        100000, GossipConfig{kind, 0, 0});
    });
  };
  const double coordinated = median_for(ScheduleKind::fixed);
  const double uncoordinated = median_for(ScheduleKind::permuted);
  EXPECT_GE(uncoordinated, 5.0 * coordinated)
      << "coordinated=" << coordinated
      << " uncoordinated=" << uncoordinated;
}

TEST(Gossip, SolvesUnderObliviousUnreliability) {
  const DualCliqueNet dc = dual_clique(32);
  int solved = 0;
  for (int i = 0; i < 6; ++i) {
    const RunResult result = run_gossip(
        dc.net, {1, 17}, std::make_unique<RandomIidEdges>(0.5),
        200 + static_cast<std::uint64_t>(i), 60000);
    solved += result.solved ? 1 : 0;
  }
  EXPECT_GE(solved, 5);
}

GossipConfig quiesce_config() {
  GossipConfig cfg;
  cfg.quiesce = true;
  return cfg;
}

TEST(GossipQuiesce, StillSolvesUnderUnreliability) {
  // Retiring tokens must not break completion: fresh receivers restart each
  // token's window, so every token keeps moving until everyone has it.
  const DualCliqueNet dc = dual_clique(32);
  int solved = 0;
  for (int i = 0; i < 6; ++i) {
    const RunResult result = run_gossip(
        dc.net, {1, 17}, std::make_unique<RandomIidEdges>(0.5),
        700 + static_cast<std::uint64_t>(i), 60000, quiesce_config());
    solved += result.solved ? 1 : 0;
  }
  EXPECT_GE(solved, 5);
}

TEST(GossipQuiesce, HoldersFallSilentAfterBudgetsDrain) {
  // Saturating gossip relays forever; quiescing gossip spends at most
  // `offer budget` transmissions per (node, token) and then goes quiet. We
  // drive past the gossip solve point with the never-solving assignment
  // problem (broadcast-set members seed distinct payloads, i.e. tokens) and
  // compare tail activity plus the per-token transmission bound.
  const DualGraph net = DualGraph::protocol(complete_graph(16));
  const int ladder = clog2(16);
  const int budget = 4 * ladder;  // the derived default
  const auto run_tail = [&](GossipConfig cfg) {
    Execution exec(net, gossip_factory(cfg),
                   std::make_shared<AssignmentProblem>(
                       16, -1, std::vector<int>{0, 8}),
                   std::make_unique<NoExtraEdges>(), {21, 6000, {}});
    exec.run();
    std::int64_t tail = 0;
    std::map<std::pair<int, std::uint64_t>, int> per_node_token;
    const auto& records = exec.history().records();
    for (std::size_t r = 0; r < records.size(); ++r) {
      for (std::size_t i = 0; i < records[r].transmitters.size(); ++i) {
        const int v = records[r].transmitters[i];
        per_node_token[{v, records[r].sent[i].payload}] += 1;
      }
      if (r + 1000 >= records.size()) {
        tail += static_cast<std::int64_t>(records[r].transmitters.size());
      }
    }
    int max_per_token = 0;
    for (const auto& [key, count] : per_node_token) {
      max_per_token = std::max(max_per_token, count);
    }
    return std::pair(tail, max_per_token);
  };
  const auto [saturating_tail, saturating_max] = run_tail(GossipConfig{});
  EXPECT_GT(saturating_tail, 0);
  EXPECT_GT(saturating_max, budget);  // unbounded relaying, visibly so
  const auto [quiesce_tail, quiesce_max] = run_tail(quiesce_config());
  EXPECT_EQ(quiesce_tail, 0);  // everyone drained well before the horizon
  EXPECT_LE(quiesce_max, budget);
}

TEST(Gossip, FairSchedulerKeepsEveryTokenCirculating) {
  // A node holding several tokens must offer each of them over time.
  const DualGraph net = DualGraph::protocol(complete_graph(8));
  Execution exec(net, gossip_factory(GossipConfig{}),
                 std::make_shared<GossipProblem>(net, std::vector<int>{0, 1,
                                                                       2}),
                 std::make_unique<NoExtraEdges>(), {5, 2000, {}});
  exec.run();
  ASSERT_TRUE(exec.solved());
  // After completion every node holds all three tokens; count per-token
  // transmissions across the run — all three token ids must appear.
  std::set<std::uint64_t> offered;
  for (const auto& rec : exec.history().records()) {
    for (const auto& m : rec.sent) offered.insert(m.payload);
  }
  EXPECT_EQ(offered.size(), 3u);
}

TEST(Gossip, MoreTokensCostMoreRounds) {
  const DualGraph net = DualGraph::protocol(complete_graph(64));
  const auto median_for_k = [&](int k) {
    return testing::median_rounds(7, 300, 100000, [&](std::uint64_t seed) {
      std::vector<int> sources;
      for (int t = 0; t < k; ++t) sources.push_back(t * 64 / k);
      return run_gossip(net, sources, std::make_unique<NoExtraEdges>(), seed,
                        100000);
    });
  };
  const double k1 = median_for_k(1);
  const double k8 = median_for_k(8);
  EXPECT_GT(k8, k1);
}

TEST(Gossip, InspectorConsistency) {
  const DualCliqueNet dc = dual_clique(16);
  Execution exec(dc.net, gossip_factory(GossipConfig{}),
                 std::make_shared<GossipProblem>(dc.net, std::vector<int>{0, 9}),
                 std::make_unique<DenseSparseOnline>(DenseSparseConfig{1.0}),
                 {11, 5000, {}});
  while (!exec.done()) {
    const int r = exec.round();
    std::vector<double> probs(16);
    for (int v = 0; v < 16; ++v) {
      probs[static_cast<std::size_t>(v)] =
          exec.inspector().transmit_probability(v, r);
    }
    exec.step();
    for (const int v : exec.history().round(r).transmitters) {
      EXPECT_GT(probs[static_cast<std::size_t>(v)], 0.0);
    }
  }
}

TEST(Gossip, HeldSetGrowsMonotonically) {
  const DualGraph net = DualGraph::protocol(ring_graph(12));
  Execution exec(net, gossip_factory(GossipConfig{}),
                 std::make_shared<GossipProblem>(net, std::vector<int>{0, 6}),
                 std::make_unique<NoExtraEdges>(), {13, 5000, {}});
  std::vector<std::size_t> prev(12, 0);
  while (!exec.done()) {
    exec.step();
    for (int v = 0; v < 12; ++v) {
      const auto* proc = dynamic_cast<const GossipBroadcast*>(&exec.process(v));
      ASSERT_NE(proc, nullptr);
      ASSERT_GE(proc->held().size(), prev[static_cast<std::size_t>(v)]);
      prev[static_cast<std::size_t>(v)] = proc->held().size();
    }
  }
  EXPECT_TRUE(exec.solved());
}

}  // namespace
}  // namespace dualcast
