// Fail-slow hardening end to end: a stalled lease holder whose
// progress-gated heartbeat lets the lease lapse, the peer that steals it,
// and the holder's self-fencing on wake-up (byte-identical merge, no task
// executed twice); per-op IO deadlines turning a hung op into a typed
// transient ETIMEDOUT; the heartbeat's refusal to swallow InjectedCrash
// (a death test); the disk-pressure classification rungs; a live daemon
// walking the degradation ladder down and back up via the free-bytes-file
// hook; and the status surfaces (text + JSON) for last-progress age and
// member pressure, byte-deterministic under a FakeClock.

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "service/daemon.hpp"
#include "service/service.hpp"
#include "util/clock.hpp"
#include "util/io.hpp"

namespace dualcast::service {
namespace {

namespace fs = std::filesystem;
using scenario::ScenarioSpec;
using util::DeadlineFs;
using util::FakeClock;
using util::FaultyFs;
using util::InjectedFault;

const ScenarioSpec& mini_scenario() {
  static const std::string name = "svc-test/failslow-mini";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec;
    spec.name = name;
    spec.title = "service fail-slow mini";
    spec.topology = "dual_clique({x})";
    spec.problem = "global(1)";
    spec.sweep = {8, 12};
    spec.trials = 3;
    spec.base_seed = 66;
    spec.max_rounds = "200*n";
    spec.columns = {
        {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
        {"robin+collider", "round_robin", "collider", ""},
    };
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("dualcast_failslow_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::string> reference_rows() {
  static const std::vector<std::string> rows = [] {
    std::vector<std::string> out;
    for (const scenario::ScenarioResult& result :
         scenario::run_scenarios({&mini_scenario()}, {})) {
      scenario::append_json_rows(result, out);
    }
    return out;
  }();
  return rows;
}

JobSpec mini_job(int shard_tasks, int lease_ttl_seconds) {
  return make_job_spec({&mini_scenario()}, scenario::RunOptions{},
                       shard_tasks, lease_ttl_seconds);
}

TEST(ClassifyDiskPressure, RungsBoundariesAndUnknowns) {
  const std::int64_t w = 1000;
  EXPECT_EQ(classify_disk_pressure(4 * w, w), DiskPressure::ok);
  EXPECT_EQ(classify_disk_pressure(4 * w - 1, w), DiskPressure::cache_shed);
  EXPECT_EQ(classify_disk_pressure(2 * w, w), DiskPressure::cache_shed);
  EXPECT_EQ(classify_disk_pressure(2 * w - 1, w),
            DiskPressure::no_new_claims);
  EXPECT_EQ(classify_disk_pressure(w, w), DiskPressure::no_new_claims);
  EXPECT_EQ(classify_disk_pressure(w - 1, w), DiskPressure::parked);
  EXPECT_EQ(classify_disk_pressure(0, w), DiskPressure::parked);
  // Unknown free space and an unset watermark both read as healthy —
  // the ladder never degrades on missing information.
  EXPECT_EQ(classify_disk_pressure(-1, w), DiskPressure::ok);
  EXPECT_EQ(classify_disk_pressure(0, 0), DiskPressure::ok);
  EXPECT_STREQ(to_string(DiskPressure::ok), "ok");
  EXPECT_STREQ(to_string(DiskPressure::cache_shed), "cache-shed");
  EXPECT_STREQ(to_string(DiskPressure::no_new_claims), "no-new-claims");
  EXPECT_STREQ(to_string(DiskPressure::parked), "parked");
}

TEST(FailSlow, StalledHolderLapsesPeerStealsAndHolderFencesOnWake) {
  // The whole fail-slow story in one deterministic pass: the holder's
  // first record reaches disk, then its fsync hangs long enough (on the
  // shared FakeClock) that the lease TTL lapses with the progress gate
  // withholding renewals. A peer — run from the stall hook, over a
  // different Fs, exactly while the holder is hung — steals the expired
  // lease and finishes everything. The holder wakes, finds the shard
  // done, fences itself off, and executes nothing further: the merge is
  // byte-identical and no task ran twice.
  const std::string dir = fresh_dir("stall_steal");
  FakeClock clock(1000);
  FaultyFs faulty(util::real_fs());
  faulty.set_tick_clock(&clock);
  StoreEnv env;
  env.fs = &faulty;
  env.clock = &clock;
  JobStore store = JobStore::create_or_attach(
      dir, mini_job(/*shard_tasks=*/3, /*lease_ttl_seconds=*/30), env);
  const JobRuntime runtime(store);
  const int total_tasks = store.total_tasks();

  StoreEnv thief_env;  // plain fs, same clock: a healthy peer machine
  thief_env.clock = &clock;
  WorkerReport thief_report;
  std::ostringstream thief_log;
  std::atomic<int> hook_runs{0};
  faulty.set_on_stall([&] {
    hook_runs.fetch_add(1);
    JobStore thief_store = JobStore::open(dir, thief_env);
    const JobRuntime thief_runtime(thief_store);
    WorkerOptions thief_options;
    thief_options.owner = "thief";
    thief_options.log = &thief_log;
    thief_report = run_worker(thief_store, thief_runtime, thief_options);
  });
  InjectedFault stall;
  stall.kind = InjectedFault::Kind::delay;
  stall.at = 0;  // the first record fsync: the record itself is durable
  stall.op = "fsync";
  stall.path_substr = "shards/";
  stall.delay_ticks = 60;  // 2x the lease TTL
  stall.delay_ms = 100;    // real window so the 20ms heartbeat poll runs
                           // (and is skipped by the gate) while hung
  faulty.inject(stall);

  WorkerOptions holder_options;
  holder_options.owner = "holder";
  std::ostringstream holder_log;
  holder_options.log = &holder_log;
  const WorkerReport holder_report =
      run_worker(store, runtime, holder_options);

  EXPECT_EQ(hook_runs.load(), 1);
  EXPECT_EQ(faulty.stalls(), 1);
  // The thief observed an expired lease mid-hold and stole it.
  EXPECT_EQ(thief_report.leases_stolen, 1);
  EXPECT_NE(thief_log.str().find("stole expired lease"), std::string::npos);
  // The holder woke to a lapsed lease on a finished shard and fenced.
  EXPECT_EQ(holder_report.shards_fenced, 1);
  EXPECT_GE(holder_report.heartbeats_skipped, 1);
  EXPECT_NE(holder_log.str().find("fenced off shard"), std::string::npos);
  // No double execution: the holder's one durable task plus the thief's
  // work account for exactly the job — the thief *resumed* from the
  // holder's watermark rather than recomputing it.
  EXPECT_EQ(holder_report.tasks_executed, 1);
  EXPECT_EQ(holder_report.tasks_executed + thief_report.tasks_executed,
            total_tasks);
  EXPECT_EQ(thief_report.tasks_skipped, 1);
  // And the merge is the single-process bytes, stall and steal included.
  JobRuntime merge_runtime(store);
  EXPECT_EQ(merge_job(store, merge_runtime, nullptr), reference_rows());
}

TEST(FailSlow, OpDeadlineTurnsHungOpIntoTimeoutAndResumeIsByteIdentical) {
  // A worker behind a DeadlineFs: a hung fsync (FakeClock jump past the
  // per-op budget) surfaces as transient ETIMEDOUT, the exhausted budget
  // stops the retry loop, and the worker unwinds like a kill. A clean
  // worker then resumes from the durable watermark — no lost or doubled
  // work.
  const std::string dir = fresh_dir("deadline");
  FakeClock clock(2000);
  FaultyFs faulty(util::real_fs());
  faulty.set_tick_clock(&clock);
  DeadlineFs deadline_fs(faulty);
  StoreEnv env;
  env.fs = &deadline_fs;
  env.clock = &clock;
  JobStore store = JobStore::create_or_attach(
      dir, mini_job(/*shard_tasks=*/3, /*lease_ttl_seconds=*/0), env);
  const JobRuntime runtime(store);

  InjectedFault stall;
  stall.kind = InjectedFault::Kind::delay;
  stall.at = 0;
  stall.op = "fsync";
  stall.path_substr = "shards/";
  stall.delay_ticks = 10;  // 2x the op deadline
  faulty.inject(stall);

  WorkerOptions options;
  options.owner = "hung";
  options.op_deadline_seconds = 5;
  options.deadline_fs = &deadline_fs;
  options.io_retries = 3;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 2;
  try {
    run_worker(store, runtime, options);
    FAIL() << "expected the hung op to time out";
  } catch (const util::IoError& error) {
    EXPECT_EQ(error.code(), ETIMEDOUT);
    EXPECT_TRUE(error.transient());
  }

  StoreEnv clean_env;
  clean_env.clock = &clock;
  JobStore resumed = JobStore::open(dir, clean_env);
  const JobRuntime resumed_runtime(resumed);
  WorkerOptions recover;
  recover.owner = "recoverer";
  const WorkerReport report = run_worker(resumed, resumed_runtime, recover);
  // The timed-out op had in fact completed on disk ("maybe done"): its
  // record is found, not recomputed.
  EXPECT_GE(report.tasks_skipped, 1);
  JobRuntime merge_runtime(resumed);
  EXPECT_EQ(merge_job(resumed, merge_runtime, nullptr), reference_rows());
}

TEST(FailSlowDeathTest, HeartbeatNeverSwallowsInjectedCrash) {
  // The heartbeat catches *only* IoError; an InjectedCrash scheduled on
  // the renewal write must escape the thread and terminate the process —
  // a crash is a crash, even on the background path. The delay schedule
  // walks the clock so a renewal becomes due (and passes the progress
  // gate) while the worker is mid-stall, then the crash fault fires on
  // the renewal's lease rename (match 1; the claim's rename is match 0).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        const std::string dir = fresh_dir("hb_crash");
        FakeClock clock(5000);
        FaultyFs faulty(util::real_fs());
        faulty.set_tick_clock(&clock);
        StoreEnv env;
        env.fs = &faulty;
        env.clock = &clock;
        JobStore store = JobStore::create_or_attach(
            dir, mini_job(/*shard_tasks=*/16, /*lease_ttl_seconds=*/30),
            env);
        const JobRuntime runtime(store);
        InjectedFault stall;
        stall.kind = InjectedFault::Kind::delay;
        stall.at = 0;
        stall.op = "fsync";
        stall.path_substr = "shards/";
        stall.delay_ticks = 9;   // < interval: progress stays "fresh"
        stall.delay_ms = 300;    // real window for the 20ms-cadence poll
        stall.sticky = true;
        faulty.inject(stall);
        InjectedFault crash;
        crash.kind = InjectedFault::Kind::crash;
        crash.at = 1;
        crash.op = "rename";
        crash.path_substr = "leases/";
        faulty.inject(crash);
        WorkerOptions options;
        options.owner = "doomed";
        run_worker(store, runtime, options);
      },
      ".*");
}

/// Writes a decimal free-bytes value atomically (temp + rename), so the
/// daemon's per-cycle re-read never sees a torn number.
void write_free_bytes(const std::string& path, std::int64_t value) {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::trunc);
  out << value << "\n";
  out.close();
  fs::rename(tmp, path);
}

/// Polls a file until it contains `needle` (or fails the test after 30s).
void wait_for_file_contains(const std::string& path,
                            const std::string& needle) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    std::string text;
    util::real_fs().read_file(path, text);
    if (text.find(needle) != std::string::npos) return;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "timed out waiting for \"" << needle << "\" in " << path;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(FailSlow, DaemonWalksPressureLadderDownAndBackUp) {
  // A live daemon against the free-bytes-file hook: squeeze the "disk"
  // to zero (the member record must publish parked), restore it (back to
  // ok), and the dropped job still completes with byte-identical rows —
  // the ladder degrades and recovers without corrupting the store.
  const std::string jobs_dir = fresh_dir("ladder_jobs");
  const std::string scratch = fresh_dir("ladder_scratch");
  const std::string free_file = scratch + "/free_bytes";
  const std::string job_dir = jobs_dir + "/job1";
  JobStore::create_or_attach(
      job_dir, mini_job(/*shard_tasks=*/3, /*lease_ttl_seconds=*/60));
  write_free_bytes(free_file, 8000);

  std::atomic<bool> stop{false};
  std::ostringstream log;
  DaemonOptions options;
  options.jobs_dir = jobs_dir;
  options.owner = "ladder-d";
  options.poll_initial_ms = 1;
  options.poll_max_ms = 5;
  options.min_free_bytes = 1000;
  options.free_bytes_file = free_file;
  options.stop = &stop;
  options.log = &log;
  DaemonReport report;
  std::thread daemon([&] { report = run_daemon(options); });

  const std::string member_file = jobs_dir + "/fleet/ladder-d";
  wait_for_file_contains(member_file, "pressure ok");
  write_free_bytes(free_file, 0);
  wait_for_file_contains(member_file, "pressure parked");
  write_free_bytes(free_file, 8000);
  wait_for_file_contains(member_file, "pressure ok");
  // Back at ok, the daemon must finish the drain.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    const JobStore probe = JobStore::open(job_dir);
    bool done = true;
    for (int s = 0; s < probe.shard_count(); ++s) {
      if (!probe.shard_done(s)) done = false;
    }
    if (done) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "job not drained after the pressure drill";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  daemon.join();

  EXPECT_GE(report.pressure_transitions, 2);  // down to parked, back up
  EXPECT_EQ(report.pressure, "ok");
  EXPECT_EQ(report.jobs_completed, 1);
  EXPECT_NE(log.str().find("disk pressure"), std::string::npos);
  JobStore store = JobStore::open(job_dir);
  JobRuntime merge_runtime(store);
  EXPECT_EQ(merge_job(store, merge_runtime, nullptr), reference_rows());
}

TEST(FailSlow, StatusSurfacesProgressAgeAndPressureDeterministically) {
  // The observability satellite: a lease whose last-progress age lags its
  // own age (the fail-slow signature) and a member publishing a degraded
  // pressure state are both rendered — text and JSON — and the output is
  // byte-identical across calls under a frozen clock.
  const std::string jobs_dir = fresh_dir("status_jobs");
  FakeClock clock(10000);
  StoreEnv env;
  env.clock = &clock;
  JobStore store = JobStore::create_or_attach(
      jobs_dir + "/job1", mini_job(/*shard_tasks=*/3, /*lease_ttl=*/60),
      env);
  ASSERT_TRUE(store.try_lease(0, "slowpoke"));
  clock.advance(7);
  store.renew_lease(0, "slowpoke");  // progress stamped at 10007
  clock.advance(5);                  // now 10012: age 12s, progress 5s ago

  FleetRegistry registry(jobs_dir, env);
  MemberRecord member;
  member.id = "presser";
  member.pid = 42;
  member.placement = "fair";
  member.host = "box-p";
  member.cores = 4;
  member.ttl_seconds = 60;
  member.started = 10000;
  member.pressure = "cache-shed";
  member.free_bytes = 3072;
  registry.publish(member);

  std::ostringstream first, second;
  print_fleet_status(jobs_dir, env, first);
  print_fleet_status(jobs_dir, env, second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_NE(first.str().find("pressure cache-shed"), std::string::npos);
  EXPECT_NE(first.str().find("(free 3072B)"), std::string::npos);
  EXPECT_NE(first.str().find(
                "lease shard 0: owner slowpoke, age 12s, progress 5s ago"),
            std::string::npos);

  const std::string json = fleet_status_json(jobs_dir, env);
  EXPECT_EQ(json, fleet_status_json(jobs_dir, env));
  EXPECT_NE(json.find("\"pressure\":\"cache-shed\""), std::string::npos);
  EXPECT_NE(json.find("\"free_bytes\":3072"), std::string::npos);
  EXPECT_NE(json.find("\"progress_age_seconds\":5"), std::string::npos);
  EXPECT_NE(json.find("\"owner\":\"slowpoke\""), std::string::npos);

  // The single-job view carries the same signal.
  std::ostringstream job_view;
  print_job_status(store, job_view);
  EXPECT_NE(job_view.str().find("progress 5s ago"), std::string::npos);
}

}  // namespace
}  // namespace dualcast::service
