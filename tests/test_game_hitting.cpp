// The β-hitting game and Lemma 3.2's k/(β-1) bound, checked empirically for
// the baseline players.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "game/hitting_game.hpp"
#include "util/assert.hpp"

namespace dualcast {
namespace {

TEST(HittingGame, WinsOnExactGuess) {
  HittingGame game(10, 7);
  EXPECT_FALSE(game.guess(3));
  EXPECT_FALSE(game.won());
  EXPECT_TRUE(game.guess(7));
  EXPECT_TRUE(game.won());
  EXPECT_EQ(game.rounds(), 2);
}

TEST(HittingGame, RejectsInvalidConstruction) {
  EXPECT_THROW(HittingGame(1, 0), ContractViolation);
  EXPECT_THROW(HittingGame(5, 5), ContractViolation);
  EXPECT_THROW(HittingGame(5, -1), ContractViolation);
}

TEST(HittingGame, RejectsGuessAfterWin) {
  HittingGame game(4, 2);
  game.guess(2);
  EXPECT_THROW(game.guess(1), ContractViolation);
}

TEST(HittingGame, RejectsOutOfRangeGuess) {
  HittingGame game(4, 2);
  EXPECT_THROW(game.guess(4), ContractViolation);
  EXPECT_THROW(game.guess(-1), ContractViolation);
}

TEST(HittingGame, RandomTargetIsUniform) {
  Rng rng(3);
  std::vector<int> counts(8, 0);
  const int trials = 80000;
  for (int t = 0; t < trials; ++t) {
    ++counts[static_cast<std::size_t>(
        HittingGame::with_random_target(8, rng)
            .reveal_target_for_diagnostics())];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.125, 0.01);
  }
}

TEST(SequentialPlayer, AlwaysWinsWithinBeta) {
  Rng rng(5);
  for (int target = 0; target < 16; ++target) {
    HittingGame game(16, target);
    SequentialPlayer player;
    const int rounds = play_hitting_game(game, player, 16, rng);
    EXPECT_EQ(rounds, target + 1);
  }
}

TEST(ShuffledPlayer, AlwaysWinsWithinBeta) {
  Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    HittingGame game = HittingGame::with_random_target(32, rng);
    ShuffledPlayer player;
    const int rounds = play_hitting_game(game, player, 32, rng);
    ASSERT_GE(rounds, 1);
    ASSERT_LE(rounds, 32);
  }
}

/// Empirical verification of Lemma 3.2: no player strategy wins within k
/// rounds with probability exceeding k/(β-1). (The optimal no-repeat player
/// achieves k/β; we check the upper bound with sampling slack.)
class Lemma32Param : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Lemma32Param, WinProbabilityWithinBound) {
  const auto [beta, k] = GetParam();
  const int trials = 4000;
  Rng rng(100 + static_cast<std::uint64_t>(beta * 31 + k));

  const auto measure = [&](auto make_player) {
    int wins = 0;
    for (int t = 0; t < trials; ++t) {
      HittingGame game = HittingGame::with_random_target(beta, rng);
      auto player = make_player();
      if (play_hitting_game(game, *player, k, rng) > 0) ++wins;
    }
    return static_cast<double>(wins) / trials;
  };

  const double bound = static_cast<double>(k) / (beta - 1);
  const double slack = 4.0 * std::sqrt(bound * (1 - bound) / trials) + 0.01;
  EXPECT_LE(measure([] { return std::make_unique<UniformPlayer>(); }),
            bound + slack);
  EXPECT_LE(measure([] { return std::make_unique<SequentialPlayer>(); }),
            bound + slack);
  EXPECT_LE(measure([] { return std::make_unique<ShuffledPlayer>(); }),
            bound + slack);
}

INSTANTIATE_TEST_SUITE_P(
    BetaAndBudget, Lemma32Param,
    ::testing::Values(std::make_tuple(16, 4), std::make_tuple(64, 8),
                      std::make_tuple(64, 32), std::make_tuple(256, 16),
                      std::make_tuple(256, 128)));

TEST(Lemma32, ShuffledPlayerIsNearOptimal) {
  // The permutation player's win probability is exactly k/β; verify it gets
  // close to the bound, i.e. the bound is nearly tight.
  const int beta = 64;
  const int k = 16;
  const int trials = 8000;
  Rng rng(999);
  int wins = 0;
  for (int t = 0; t < trials; ++t) {
    HittingGame game = HittingGame::with_random_target(beta, rng);
    ShuffledPlayer player;
    if (play_hitting_game(game, player, k, rng) > 0) ++wins;
  }
  const double rate = static_cast<double>(wins) / trials;
  EXPECT_NEAR(rate, static_cast<double>(k) / beta, 0.02);
}

}  // namespace
}  // namespace dualcast
