// The Theorem 3.1 reduction, run forward: simulating a broadcast algorithm
// on the bridgeless dual clique wins the β-hitting game, with O(log β)
// guesses per simulated round, and the simulation is *valid* — identical to
// an execution on the true (bridged) target network up to the winning round.

#include <gtest/gtest.h>

#include <cmath>

#include "adversary/dense_sparse.hpp"
#include "core/factories.hpp"
#include "core/kernels.hpp"
#include "game/reduction_player.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace dualcast {
namespace {

DecayGlobalConfig persistent_decay(ScheduleKind kind) {
  DecayGlobalConfig cfg = DecayGlobalConfig::fast(kind);
  cfg.calls = DecayGlobalConfig::kUnbounded;
  return cfg;
}

TEST(ReductionPlayer, WinsWithRoundRobin) {
  // Round robin solves broadcast in O(n) against the dense/sparse link
  // behavior, so the player must win in O(n log n) guesses; in fact every
  // round robin round is sparse with one transmitter -> one guess per round.
  const int beta = 64;
  Rng rng(11);
  int wins = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    HittingGame game = HittingGame::with_random_target(beta, rng);
    ReductionConfig cfg;
    cfg.beta = beta;
    cfg.problem = ReductionProblem::global_broadcast;
    cfg.seed = 100 + static_cast<std::uint64_t>(t);
    BroadcastReductionPlayer player(cfg,
                                    round_robin_factory(RoundRobinConfig{true}));
    const ReductionOutcome outcome = player.play(game);
    if (outcome.won) {
      ++wins;
      EXPECT_LE(outcome.game_rounds, 4 * beta);
      EXPECT_LE(outcome.max_guesses_in_a_round, 1);
    }
  }
  EXPECT_EQ(wins, trials);
}

TEST(ReductionPlayer, WinsWithPersistentDecay) {
  const int beta = 64;
  Rng rng(13);
  int wins = 0;
  const int trials = 10;
  int max_guesses = 0;
  for (int t = 0; t < trials; ++t) {
    HittingGame game = HittingGame::with_random_target(beta, rng);
    ReductionConfig cfg;
    cfg.beta = beta;
    cfg.problem = ReductionProblem::global_broadcast;
    cfg.seed = 200 + static_cast<std::uint64_t>(t);
    BroadcastReductionPlayer player(
        cfg, decay_global_factory(persistent_decay(ScheduleKind::fixed)));
    const ReductionOutcome outcome = player.play(game);
    wins += outcome.won ? 1 : 0;
    max_guesses = std::max(max_guesses, outcome.max_guesses_in_a_round);
  }
  EXPECT_GE(wins, trials - 1);
  // O(log β) guesses per simulated round (β excepted for the all-guess case,
  // which should essentially never fire for a dense round).
  EXPECT_LE(max_guesses, 8 * clog2(static_cast<std::uint64_t>(beta)));
}

TEST(ReductionPlayer, WorksForLocalBroadcastRoles) {
  const int beta = 32;
  Rng rng(17);
  int wins = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    HittingGame game = HittingGame::with_random_target(beta, rng);
    ReductionConfig cfg;
    cfg.beta = beta;
    cfg.problem = ReductionProblem::local_broadcast;
    cfg.seed = 300 + static_cast<std::uint64_t>(t);
    BroadcastReductionPlayer player(
        cfg, decay_local_factory(DecayLocalConfig{}));
    const ReductionOutcome outcome = player.play(game);
    wins += outcome.won ? 1 : 0;
  }
  EXPECT_GE(wins, trials - 1);
}

TEST(ReductionPlayer, SparseRoundsDominateForDecay) {
  const int beta = 64;
  Rng rng(19);
  HittingGame game = HittingGame::with_random_target(beta, rng);
  ReductionConfig cfg;
  cfg.beta = beta;
  cfg.seed = 42;
  BroadcastReductionPlayer player(
      cfg, decay_global_factory(persistent_decay(ScheduleKind::fixed)));
  const ReductionOutcome outcome = player.play(game);
  ASSERT_TRUE(outcome.won);
  EXPECT_GT(outcome.sparse_rounds, 0);
  EXPECT_GT(outcome.dense_rounds, 0);
}

TEST(ReductionPlayer, KernelEngineReplaysScalarPlayerExactly) {
  // The batch-engine port: with the algorithm's kernel supplied, the inner
  // simulation runs on KernelExecution. Engines replay bit-identically, so
  // the whole played game — labels, guesses, win round — must match the
  // scalar player outcome for outcome.
  const int beta = 48;
  Rng rng(23);
  for (int t = 0; t < 6; ++t) {
    const int target = static_cast<int>(rng.uniform_int(0, beta - 1));
    ReductionConfig cfg;
    cfg.beta = beta;
    cfg.problem = t % 2 == 0 ? ReductionProblem::global_broadcast
                             : ReductionProblem::local_broadcast;
    cfg.seed = 600 + static_cast<std::uint64_t>(t);

    HittingGame scalar_game(beta, target);
    BroadcastReductionPlayer scalar_player(
        cfg, decay_global_factory(persistent_decay(ScheduleKind::fixed)));
    const ReductionOutcome scalar_outcome = scalar_player.play(scalar_game);

    HittingGame kernel_game(beta, target);
    BroadcastReductionPlayer kernel_player(
        cfg, decay_global_factory(persistent_decay(ScheduleKind::fixed)),
        decay_global_kernel_factory(persistent_decay(ScheduleKind::fixed)));
    const ReductionOutcome kernel_outcome = kernel_player.play(kernel_game);

    EXPECT_EQ(scalar_outcome.won, kernel_outcome.won) << "trial " << t;
    EXPECT_EQ(scalar_outcome.game_rounds, kernel_outcome.game_rounds);
    EXPECT_EQ(scalar_outcome.sim_rounds, kernel_outcome.sim_rounds);
    EXPECT_EQ(scalar_outcome.dense_rounds, kernel_outcome.dense_rounds);
    EXPECT_EQ(scalar_outcome.sparse_rounds, kernel_outcome.sparse_rounds);
    EXPECT_EQ(scalar_outcome.max_guesses_in_a_round,
              kernel_outcome.max_guesses_in_a_round);
  }
}

TEST(ReductionPlayer, RejectsMismatchedGame) {
  ReductionConfig cfg;
  cfg.beta = 16;
  BroadcastReductionPlayer player(cfg,
                                  round_robin_factory(RoundRobinConfig{true}));
  HittingGame wrong_size(8, 1);
  EXPECT_THROW(player.play(wrong_size), ContractViolation);
}

TEST(ReductionValidity, SimulationMatchesTrueTargetNetworkUntilTheWin) {
  // The proof's central claim: the bridgeless simulation is consistent with
  // the *true* network (bridge at t) under the same adversary until the
  // player wins. We replay: run the player's simulation (bridgeless, seed s)
  // and a real execution on the bridged dual clique with bridge_index = t,
  // same seed and same dense/sparse adversary, and compare per-round
  // transmitter sets for the prefix of rounds the player consumed.
  const int beta = 32;
  const int target = 11;
  const std::uint64_t seed = 77;

  HittingGame game(beta, target);
  ReductionConfig cfg;
  cfg.beta = beta;
  cfg.seed = seed;
  BroadcastReductionPlayer player(
      cfg, decay_global_factory(persistent_decay(ScheduleKind::fixed)));
  const ReductionOutcome outcome = player.play(game);
  ASSERT_TRUE(outcome.won);

  // True target network: bridge at (target, target + beta).
  const DualCliqueNet true_net = dual_clique(2 * beta, target);
  Execution real(
      true_net.net, decay_global_factory(persistent_decay(ScheduleKind::fixed)),
      std::make_shared<AssignmentProblem>(2 * beta, 0, std::vector<int>{}),
      std::make_unique<DenseSparseOnline>(DenseSparseConfig{1.0}), {seed,
      outcome.sim_rounds + 1, {}});

  // Re-run the player's simulation to recover its transmitter trace.
  const DualCliqueNet sim_net = dual_clique_without_bridge(2 * beta);
  Execution sim(
      sim_net.net, decay_global_factory(persistent_decay(ScheduleKind::fixed)),
      std::make_shared<AssignmentProblem>(2 * beta, 0, std::vector<int>{}),
      std::make_unique<DenseSparseOnline>(DenseSparseConfig{1.0}), {seed,
      outcome.sim_rounds + 1, {}});

  // All rounds before the winning one must agree exactly (the winning round
  // itself may diverge only *after* the winning transmission, which is the
  // last event compared).
  for (int r = 0; r < outcome.sim_rounds; ++r) {
    real.step();
    sim.step();
    ASSERT_EQ(real.history().round(r).transmitters,
              sim.history().round(r).transmitters)
        << "divergence at simulated round " << r << " (win at "
        << outcome.sim_rounds - 1 << ")";
  }
}

}  // namespace
}  // namespace dualcast
