#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace dualcast {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle with a tail 2-3.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.finalize();
  return g;
}

TEST(Graph, VertexAndEdgeCounts) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.n(), 4);
  EXPECT_EQ(g.edge_count(), 4);
}

TEST(Graph, NeighborsSortedAndDeduplicated) {
  Graph g(3);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  g.add_edge(0, 2);  // duplicate
  g.finalize();
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 1);
  EXPECT_EQ(nb[1], 2);
}

TEST(Graph, HasEdgeSymmetric) {
  const Graph g = triangle_plus_tail();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(3, 0));
}

TEST(Graph, Degrees) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(2), 3);
  EXPECT_EQ(g.degree(3), 1);
  EXPECT_EQ(g.max_degree(), 3);
}

TEST(Graph, RejectsSelfLoopsAndBadVertices) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 3), ContractViolation);
  EXPECT_THROW(g.add_edge(-1, 0), ContractViolation);
}

TEST(Graph, QueriesRequireFinalize) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.neighbors(0), ContractViolation);
  EXPECT_THROW(g.has_edge(0, 1), ContractViolation);
  g.finalize();
  EXPECT_NO_THROW(g.neighbors(0));
}

TEST(Graph, BfsDistances) {
  const Graph g = triangle_plus_tail();
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 1);
  EXPECT_EQ(dist[3], 2);
}

TEST(Graph, BfsUnreachableIsMinusOne) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(triangle_plus_tail().is_connected());
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  EXPECT_FALSE(g.is_connected());
  Graph single(1);
  single.finalize();
  EXPECT_TRUE(single.is_connected());
}

TEST(Graph, DiameterAndEccentricity) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.diameter(), 2);
  EXPECT_EQ(g.eccentricity(3), 2);
  EXPECT_EQ(g.eccentricity(2), 1);
}

TEST(Graph, EdgesListOrdered) {
  const Graph g = triangle_plus_tail();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 4u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Graph, EmptyGraphQueriesAreSafe) {
  Graph g(5);
  g.finalize();
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.max_degree(), 0);
  EXPECT_FALSE(g.is_connected());
  EXPECT_TRUE(g.edges().empty());
}

}  // namespace
}  // namespace dualcast
