#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dualcast {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle with a tail 2-3.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.finalize();
  return g;
}

TEST(Graph, VertexAndEdgeCounts) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.n(), 4);
  EXPECT_EQ(g.edge_count(), 4);
}

TEST(Graph, NeighborsSortedAndDeduplicated) {
  Graph g(3);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  g.add_edge(0, 2);  // duplicate
  g.finalize();
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 1);
  EXPECT_EQ(nb[1], 2);
}

TEST(Graph, HasEdgeSymmetric) {
  const Graph g = triangle_plus_tail();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(3, 0));
}

TEST(Graph, Degrees) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(2), 3);
  EXPECT_EQ(g.degree(3), 1);
  EXPECT_EQ(g.max_degree(), 3);
}

TEST(Graph, RejectsSelfLoopsAndBadVertices) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 3), ContractViolation);
  EXPECT_THROW(g.add_edge(-1, 0), ContractViolation);
}

TEST(Graph, QueriesRequireFinalize) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.neighbors(0), ContractViolation);
  EXPECT_THROW(g.has_edge(0, 1), ContractViolation);
  g.finalize();
  EXPECT_NO_THROW(g.neighbors(0));
}

TEST(Graph, BfsDistances) {
  const Graph g = triangle_plus_tail();
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 1);
  EXPECT_EQ(dist[3], 2);
}

TEST(Graph, BfsUnreachableIsMinusOne) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(triangle_plus_tail().is_connected());
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  EXPECT_FALSE(g.is_connected());
  Graph single(1);
  single.finalize();
  EXPECT_TRUE(single.is_connected());
}

TEST(Graph, DiameterAndEccentricity) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.diameter(), 2);
  EXPECT_EQ(g.eccentricity(3), 2);
  EXPECT_EQ(g.eccentricity(2), 1);
}

TEST(Graph, EdgesListOrdered) {
  const Graph g = triangle_plus_tail();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 4u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Graph, EmptyGraphQueriesAreSafe) {
  Graph g(5);
  g.finalize();
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.max_degree(), 0);
  EXPECT_FALSE(g.is_connected());
  EXPECT_TRUE(g.edges().empty());
}

TEST(Graph, CsrViewsMatchPerVertexQueries) {
  const Graph g = triangle_plus_tail();
  const auto offsets = g.csr_offsets();
  const auto flat = g.csr_neighbors();
  ASSERT_EQ(offsets.size(), static_cast<std::size_t>(g.n()) + 1);
  EXPECT_EQ(offsets.front(), 0);
  EXPECT_EQ(offsets.back(), static_cast<std::int64_t>(flat.size()));
  EXPECT_EQ(static_cast<std::int64_t>(flat.size()), 2 * g.edge_count());
  for (int v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    ASSERT_EQ(static_cast<std::int64_t>(nb.size()),
              offsets[static_cast<std::size_t>(v) + 1] -
                  offsets[static_cast<std::size_t>(v)]);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      EXPECT_EQ(nb[i],
                flat[static_cast<std::size_t>(
                    offsets[static_cast<std::size_t>(v)]) + i]);
    }
  }
}

TEST(Graph, AddEdgeAfterFinalizeMergesWithExistingEdges) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  ASSERT_EQ(g.edge_count(), 2);
  g.add_edge(3, 4);
  g.add_edge(0, 1);  // duplicate of a packed edge
  EXPECT_FALSE(g.finalized());
  g.finalize();
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(3, 4));
}

TEST(Graph, RandomizedCrossCheckAgainstReferenceAdjacency) {
  // The CSR implementation must be observably identical to the reference
  // sorted-adjacency-list semantics on arbitrary graphs with duplicate
  // insertions and multi-phase finalization.
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 39));
    Graph g(n);
    std::set<std::pair<int, int>> reference;
    const int attempts = static_cast<int>(rng.uniform_int(0, 3 * n));
    for (int a = 0; a < attempts; ++a) {
      const int u = static_cast<int>(rng.uniform_int(0, n - 1));
      const int v = static_cast<int>(rng.uniform_int(0, n - 1));
      if (u == v) continue;
      g.add_edge(u, v);
      reference.insert({std::min(u, v), std::max(u, v)});
      if (rng.bernoulli(0.05)) g.finalize();  // interleave re-finalization
    }
    g.finalize();

    ASSERT_EQ(g.edge_count(), static_cast<std::int64_t>(reference.size()));
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
    for (const auto& [u, v] : reference) {
      adj[static_cast<std::size_t>(u)].push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
    }
    int max_deg = 0;
    for (int v = 0; v < n; ++v) {
      auto& expected = adj[static_cast<std::size_t>(v)];
      std::sort(expected.begin(), expected.end());
      const auto got = g.neighbors(v);
      ASSERT_EQ(std::vector<int>(got.begin(), got.end()), expected)
          << "trial " << trial << " vertex " << v;
      EXPECT_EQ(g.degree(v), static_cast<int>(expected.size()));
      max_deg = std::max(max_deg, static_cast<int>(expected.size()));
    }
    EXPECT_EQ(g.max_degree(), max_deg);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        const bool expected =
            u != v &&
            reference.count({std::min(u, v), std::max(u, v)}) > 0;
        ASSERT_EQ(g.has_edge(u, v), expected);
      }
    }
    const auto edges = g.edges();
    const std::set<std::pair<int, int>> edge_set(edges.begin(), edges.end());
    ASSERT_EQ(edge_set, reference);
  }
}

}  // namespace
}  // namespace dualcast
