#include "graph/dual_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace dualcast {
namespace {

TEST(DualGraph, RequiresContainment) {
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  Graph gp(3);
  gp.add_edge(0, 2);  // missing (0,1)!
  gp.finalize();
  EXPECT_THROW(DualGraph(g, gp), ContractViolation);
}

TEST(DualGraph, RequiresSameVertexCount) {
  Graph g(3);
  g.finalize();
  Graph gp(4);
  gp.finalize();
  EXPECT_THROW(DualGraph(g, gp), ContractViolation);
}

TEST(DualGraph, GPrimeOnlyEdgesIndexed) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.add_edge(1, 3);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  ASSERT_EQ(net.gp_only_edges().size(), 2u);
  for (const auto& [u, v] : net.gp_only_edges()) {
    EXPECT_TRUE(net.gprime().has_edge(u, v));
    EXPECT_FALSE(net.g().has_edge(u, v));
    EXPECT_LT(u, v);
  }
}

TEST(DualGraph, GPrimeOnlyNeighbors) {
  Graph g(4);
  g.add_edge(0, 1);
  g.finalize();
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.add_edge(0, 3);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  const auto nb = net.gp_only_neighbors(0);
  EXPECT_EQ(nb.size(), 2u);
  EXPECT_TRUE(net.gp_only_neighbors(1).empty());
}

TEST(DualGraph, ProtocolModelHasNoUnreliableEdges) {
  const DualGraph net = DualGraph::protocol(ring_graph(10));
  EXPECT_TRUE(net.gp_only_edges().empty());
  EXPECT_EQ(net.g().edge_count(), net.gprime().edge_count());
  EXPECT_EQ(net.max_degree(), 2);
}

TEST(DualGraph, CompleteFlagDetection) {
  const DualGraph complete = DualGraph::protocol(complete_graph(6));
  EXPECT_TRUE(complete.gprime_complete());
  const DualGraph ring = DualGraph::protocol(ring_graph(6));
  EXPECT_FALSE(ring.gprime_complete());
}

TEST(DualGraph, OverlayCsrViewsMatchPerVertexQueries) {
  Graph g = ring_graph(8);
  Graph gp = ring_graph(8);
  gp.add_edge(0, 4);
  gp.add_edge(1, 5);
  gp.add_edge(1, 3);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  const auto offsets = net.gp_only_csr_offsets();
  const auto flat = net.gp_only_csr_neighbors();
  ASSERT_EQ(offsets.size(), static_cast<std::size_t>(net.n()) + 1);
  EXPECT_EQ(offsets.front(), 0);
  EXPECT_EQ(offsets.back(), static_cast<std::int64_t>(flat.size()));
  EXPECT_EQ(flat.size(), 2 * net.gp_only_edges().size());
  for (int v = 0; v < net.n(); ++v) {
    const auto nb = net.gp_only_neighbors(v);
    ASSERT_EQ(static_cast<std::int64_t>(nb.size()),
              offsets[static_cast<std::size_t>(v) + 1] -
                  offsets[static_cast<std::size_t>(v)]);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    for (std::size_t i = 0; i < nb.size(); ++i) {
      EXPECT_EQ(nb[i],
                flat[static_cast<std::size_t>(
                    offsets[static_cast<std::size_t>(v)]) + i]);
    }
  }
}

TEST(DualGraph, MaxDegreeIsGPrimeDegree) {
  Graph g(5);
  g.add_edge(0, 1);
  g.finalize();
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.add_edge(0, 3);
  gp.add_edge(0, 4);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  EXPECT_EQ(net.max_degree(), 4);
  EXPECT_EQ(net.g().max_degree(), 1);
}

}  // namespace
}  // namespace dualcast
