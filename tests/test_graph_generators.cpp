#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dualcast {
namespace {

class LineParam : public ::testing::TestWithParam<int> {};

TEST_P(LineParam, StructureAndDiameter) {
  const int n = GetParam();
  const Graph g = line_graph(n);
  EXPECT_EQ(g.n(), n);
  EXPECT_EQ(g.edge_count(), n - 1);
  EXPECT_TRUE(g.is_connected());
  if (n >= 2) {
    EXPECT_EQ(g.diameter(), n - 1);
    EXPECT_EQ(g.degree(0), 1);
    EXPECT_EQ(g.degree(n - 1), 1);
  }
  for (int v = 1; v + 1 < n; ++v) EXPECT_EQ(g.degree(v), 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LineParam, ::testing::Values(1, 2, 5, 32, 101));

class RingParam : public ::testing::TestWithParam<int> {};

TEST_P(RingParam, EveryVertexHasDegreeTwo) {
  const int n = GetParam();
  const Graph g = ring_graph(n);
  EXPECT_EQ(g.edge_count(), n);
  EXPECT_TRUE(g.is_connected());
  for (int v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_EQ(g.diameter(), n / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingParam, ::testing::Values(3, 4, 9, 64));

TEST(Generators, Grid) {
  const Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.n(), 12);
  EXPECT_EQ(g.edge_count(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.diameter(), 3 - 1 + 4 - 1);
  EXPECT_EQ(g.degree(0), 2);   // corner
  EXPECT_EQ(g.degree(5), 4);   // interior (row 1, col 1)
}

TEST(Generators, Star) {
  const Graph g = star_graph(10);
  EXPECT_EQ(g.edge_count(), 9);
  EXPECT_EQ(g.degree(0), 9);
  for (int v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1);
  EXPECT_EQ(g.diameter(), 2);
}

TEST(Generators, Complete) {
  const Graph g = complete_graph(8);
  EXPECT_EQ(g.edge_count(), 28);
  EXPECT_EQ(g.max_degree(), 7);
  EXPECT_EQ(g.diameter(), 1);
}

class TreeParam : public ::testing::TestWithParam<int> {};

TEST_P(TreeParam, IsATree) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  const Graph g = random_tree(n, rng);
  EXPECT_EQ(g.n(), n);
  EXPECT_EQ(g.edge_count(), n - 1);
  EXPECT_TRUE(g.is_connected());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeParam, ::testing::Values(1, 2, 17, 256));

TEST(Generators, RandomTreeDeterministicPerSeed) {
  Rng r1(42);
  Rng r2(42);
  const Graph a = random_tree(50, r1);
  const Graph b = random_tree(50, r2);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Generators, WithRandomGPrimeContainsG) {
  Rng rng(7);
  const Graph g = ring_graph(20);
  const DualGraph net = with_random_gprime(g, 0.2, rng);
  EXPECT_EQ(net.n(), 20);
  for (const auto& [u, v] : g.edges()) {
    EXPECT_TRUE(net.gprime().has_edge(u, v));
  }
  EXPECT_GE(net.gprime().edge_count(), g.edge_count());
}

TEST(Generators, WithRandomGPrimeZeroAndOne) {
  Rng rng(9);
  const Graph g = ring_graph(12);
  const DualGraph none = with_random_gprime(g, 0.0, rng);
  EXPECT_EQ(none.gp_only_edges().size(), 0u);
  const DualGraph full = with_random_gprime(g, 1.0, rng);
  EXPECT_EQ(full.gprime().edge_count(), 12 * 11 / 2);
  EXPECT_TRUE(full.gprime_complete());
}

}  // namespace
}  // namespace dualcast
