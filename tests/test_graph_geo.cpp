// Geographic networks: grey-zone construction, the §2 geographic constraint,
// and the §4.3 region decomposition.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/geometry.hpp"
#include "graph/regions.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dualcast {
namespace {

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(GeoNet, RandomGeometricSatisfiesConstraintAndConnectivity) {
  Rng rng(11);
  const GeoNet geo = random_geometric({.n = 120, .side = 6.0, .r = 2.0}, rng);
  EXPECT_EQ(geo.net.n(), 120);
  EXPECT_TRUE(geo.net.g().is_connected());
  const GeoCheckResult check = check_geographic(geo.net, geo.points, geo.r);
  EXPECT_TRUE(check.ok) << check.reason << " (" << check.u << "," << check.v
                        << ")";
}

TEST(GeoNet, GreyZonePairsAreGPrimeOnly) {
  Rng rng(13);
  const GeoNet geo = random_geometric({.n = 100, .side = 5.0, .r = 2.0}, rng);
  for (const auto& [u, v] : geo.net.gp_only_edges()) {
    const double d = distance(geo.points[static_cast<std::size_t>(u)],
                              geo.points[static_cast<std::size_t>(v)]);
    EXPECT_GT(d, 1.0);
    EXPECT_LE(d, geo.r);
  }
}

TEST(GeoNet, ImpossibleDensityThrows) {
  Rng rng(17);
  // 4 points in a 100x100 box will essentially never form a connected unit
  // disk graph.
  EXPECT_THROW(
      random_geometric({.n = 4, .side = 100.0, .r = 2.0, .max_attempts = 3},
                       rng),
      ContractViolation);
}

class JitteredGridParam
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(JitteredGridParam, ConnectedAndGeographic) {
  const auto [rows, cols, spacing] = GetParam();
  Rng rng(19);
  const GeoNet geo = jittered_grid_geo(rows, cols, spacing, 0.05, 2.0, rng);
  EXPECT_EQ(geo.net.n(), rows * cols);
  EXPECT_TRUE(geo.net.g().is_connected());
  const GeoCheckResult check = check_geographic(geo.net, geo.points, geo.r);
  EXPECT_TRUE(check.ok) << check.reason;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JitteredGridParam,
    ::testing::Values(std::make_tuple(4, 4, 0.8), std::make_tuple(8, 8, 0.5),
                      std::make_tuple(3, 20, 0.7), std::make_tuple(10, 10, 0.3)));

TEST(GeoNet, DenserSpacingRaisesDegree) {
  Rng rng(23);
  const GeoNet sparse = jittered_grid_geo(10, 10, 0.9, 0.0, 1.5, rng);
  const GeoNet dense = jittered_grid_geo(10, 10, 0.4, 0.0, 1.5, rng);
  EXPECT_GT(dense.net.max_degree(), sparse.net.max_degree());
}

TEST(GeoCheck, DetectsMissingGEdge) {
  // Two nodes within unit distance but no G edge.
  Graph g(2);
  g.finalize();
  Graph gp(2);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  const GeoCheckResult check =
      check_geographic(net, {{0.0, 0.0}, {0.5, 0.0}}, 2.0);
  EXPECT_FALSE(check.ok);
}

TEST(GeoCheck, DetectsFarGPrimeEdge) {
  // A G'-only edge between nodes at distance 9 violates the constraint for
  // r = 2.
  Graph g(2);
  g.finalize();
  Graph gp(2);
  gp.add_edge(0, 1);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  const GeoCheckResult check =
      check_geographic(net, {{0.0, 0.0}, {9.0, 0.0}}, 2.0);
  EXPECT_FALSE(check.ok);
}

TEST(Regions, PartitionCoversAllNodes) {
  Rng rng(29);
  const GeoNet geo = jittered_grid_geo(8, 8, 0.6, 0.05, 2.0, rng);
  const RegionDecomposition regions(geo);
  int total = 0;
  for (int r = 0; r < regions.region_count(); ++r) {
    total += static_cast<int>(regions.members(r).size());
    for (const int v : regions.members(r)) {
      EXPECT_EQ(regions.region_of(v), r);
    }
  }
  EXPECT_EQ(total, geo.net.n());
}

TEST(Regions, SameRegionNodesAreGNeighbors) {
  Rng rng(31);
  const GeoNet geo = jittered_grid_geo(10, 10, 0.5, 0.05, 2.0, rng);
  const RegionDecomposition regions(geo);
  for (int r = 0; r < regions.region_count(); ++r) {
    const auto& members = regions.members(r);
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        EXPECT_TRUE(geo.net.g().has_edge(members[i], members[j]))
            << "region " << r << " members " << members[i] << ","
            << members[j];
      }
    }
  }
}

TEST(Regions, NeighborCountWithinConstantBound) {
  Rng rng(37);
  const double r = 2.0;
  const GeoNet geo = jittered_grid_geo(12, 12, 0.45, 0.05, r, rng);
  const RegionDecomposition regions(geo);
  EXPECT_LE(regions.max_neighboring_regions(),
            RegionDecomposition::gamma_bound(r));
  EXPECT_GE(regions.max_neighboring_regions(), 1);
}

TEST(Regions, GammaBoundGrowsWithR) {
  EXPECT_LT(RegionDecomposition::gamma_bound(1.0),
            RegionDecomposition::gamma_bound(3.0));
}

}  // namespace
}  // namespace dualcast
