// LayerView and the implicit DualGraph representations: every implicit
// variant must answer degree / neighbors / has_edge / row-synthesis /
// edge-index queries exactly as the explicit construction it replaces, and
// the explicit constructor must detect the dual-clique structure tag.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/layer_view.hpp"
#include "util/rng.hpp"

namespace dualcast {
namespace {

std::vector<int> neighbors_of(const LayerView& view, int v) {
  std::vector<int> out;
  view.for_each_neighbor(v, [&](int u) { out.push_back(u); });
  return out;
}

std::vector<int> row_bits(const LayerView& view, int v) {
  std::vector<std::uint64_t> words(
      (static_cast<std::size_t>(view.n()) + 63) / 64);
  view.synthesize_row(v, words);
  std::vector<int> out;
  for (int u = 0; u < view.n(); ++u) {
    if ((words[static_cast<std::size_t>(u) / 64] >>
         (static_cast<std::uint64_t>(u) % 64)) &
        1u) {
      out.push_back(u);
    }
  }
  return out;
}

/// Asserts `view` describes exactly the same layer as the explicit `ref`.
void expect_layer_equals(const LayerView& view, const LayerView& ref) {
  ASSERT_EQ(view.n(), ref.n());
  EXPECT_EQ(view.edge_count(), ref.edge_count());
  EXPECT_EQ(view.max_degree(), ref.max_degree());
  for (int v = 0; v < view.n(); ++v) {
    EXPECT_EQ(view.degree(v), ref.degree(v)) << "v=" << v;
    EXPECT_EQ(neighbors_of(view, v), neighbors_of(ref, v)) << "v=" << v;
    EXPECT_EQ(row_bits(view, v), row_bits(ref, v)) << "v=" << v;
    for (int u = 0; u < view.n(); ++u) {
      EXPECT_EQ(view.has_edge(v, u), ref.has_edge(v, u))
          << "v=" << v << " u=" << u;
    }
  }
}

TEST(LayerView, CompleteMatchesExplicitKn) {
  const Graph kn = complete_graph(11);
  expect_layer_equals(
      LayerView::complete(11),
      LayerView::explicit_csr(11, kn.csr_offsets(), kn.csr_neighbors()));
}

TEST(LayerView, DualCliquesMatchesExplicitConstruction) {
  // Two cliques on [0,5) / [5,10) plus the bridge (2, 7).
  Graph g(10);
  for (int u = 0; u < 5; ++u) {
    for (int v = u + 1; v < 5; ++v) {
      g.add_edge(u, v);
      g.add_edge(5 + u, 5 + v);
    }
  }
  g.add_edge(2, 7);
  g.finalize();
  expect_layer_equals(
      LayerView::dual_cliques(10, 5, 2, 7),
      LayerView::explicit_csr(10, g.csr_offsets(), g.csr_neighbors()));
}

TEST(LayerView, CompleteBipartiteWithHoleMatchesExplicit) {
  // A x B cross edges minus the hole (1, 6).
  Graph g(9);
  for (int a = 0; a < 4; ++a) {
    for (int b = 4; b < 9; ++b) {
      if (!(a == 1 && b == 6)) g.add_edge(a, b);
    }
  }
  g.finalize();
  expect_layer_equals(
      LayerView::complete_bipartite(9, 4, 1, 6),
      LayerView::explicit_csr(9, g.csr_offsets(), g.csr_neighbors()));
}

TEST(LayerView, ComplementOfSparseMatchesExplicitComplement) {
  Rng rng(99);
  Graph sparse(13);
  for (int e = 0; e < 15; ++e) {
    const int u = static_cast<int>(rng.uniform_int(0, 12));
    const int v = static_cast<int>(rng.uniform_int(0, 12));
    if (u != v) sparse.add_edge(u, v);
  }
  sparse.finalize();
  Graph complement(13);
  for (int u = 0; u < 13; ++u) {
    for (int v = u + 1; v < 13; ++v) {
      if (!sparse.has_edge(u, v)) complement.add_edge(u, v);
    }
  }
  complement.finalize();
  expect_layer_equals(
      LayerView::complement_of_sparse(13, sparse.csr_offsets(),
                                      sparse.csr_neighbors()),
      LayerView::explicit_csr(13, complement.csr_offsets(),
                              complement.csr_neighbors()));
}

// ---------------------------------------------------------------------------
// Implicit DualGraph representations vs the explicit construction.
// ---------------------------------------------------------------------------

void expect_dual_graphs_equal(const DualGraph& a, const DualGraph& b) {
  ASSERT_EQ(a.n(), b.n());
  EXPECT_EQ(a.max_degree(), b.max_degree());
  EXPECT_EQ(a.gprime_complete(), b.gprime_complete());
  EXPECT_EQ(a.g_connected(), b.g_connected());
  ASSERT_EQ(a.gp_only_edge_count(), b.gp_only_edge_count());
  for (std::int64_t e = 0; e < a.gp_only_edge_count(); ++e) {
    EXPECT_EQ(a.gp_only_edge(e), b.gp_only_edge(e)) << "edge " << e;
  }
  expect_layer_equals(a.g_layer(), b.g_layer());
  expect_layer_equals(a.gprime_layer(), b.gprime_layer());
  expect_layer_equals(a.gp_only_layer(), b.gp_only_layer());
}

TEST(ImplicitDualGraph, DualCliqueMatchesExplicitEdgeForEdge) {
  for (const int bridge_index : {0, 3}) {
    Graph g(16);
    for (int u = 0; u < 8; ++u) {
      for (int v = u + 1; v < 8; ++v) {
        g.add_edge(u, v);
        g.add_edge(8 + u, 8 + v);
      }
    }
    g.add_edge(bridge_index, 8 + bridge_index);
    g.finalize();
    const DualGraph expl(std::move(g), complete_graph(16));
    const DualGraph impl = DualGraph::implicit_dual_clique(16, bridge_index);
    EXPECT_FALSE(expl.is_implicit());
    EXPECT_TRUE(impl.is_implicit());
    expect_dual_graphs_equal(impl, expl);
  }
}

TEST(ImplicitDualGraph, BridgelessDualCliqueMatchesExplicit) {
  Graph g(12);
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) {
      g.add_edge(u, v);
      g.add_edge(6 + u, 6 + v);
    }
  }
  g.finalize();
  const DualGraph expl(std::move(g), complete_graph(12));
  const DualGraph impl =
      DualGraph::implicit_dual_clique(12, 0, /*with_bridge=*/false);
  expect_dual_graphs_equal(impl, expl);
  EXPECT_FALSE(impl.g_connected());
}

TEST(ImplicitDualGraph, CompleteGprimeMatchesExplicit) {
  Rng rng(5);
  Graph g(14);
  for (int v = 0; v + 1 < 14; ++v) g.add_edge(v, v + 1);
  for (int e = 0; e < 8; ++e) {
    const int u = static_cast<int>(rng.uniform_int(0, 13));
    const int v = static_cast<int>(rng.uniform_int(0, 13));
    if (u != v) g.add_edge(u, v);
  }
  g.finalize();
  Graph g_copy = g;
  const DualGraph expl(std::move(g_copy), complete_graph(14));
  const DualGraph impl = with_complete_gprime(std::move(g));
  EXPECT_TRUE(impl.is_implicit());
  EXPECT_EQ(impl.structure(), DualGraph::Structure::gprime_complete);
  expect_dual_graphs_equal(impl, expl);
}

// ---------------------------------------------------------------------------
// Structure detection on the explicit representation.
// ---------------------------------------------------------------------------

TEST(StructureDetection, ExplicitDualCliqueIsTagged) {
  const DualCliqueNet dc = dual_clique(24, 5);
  ASSERT_FALSE(dc.net.is_implicit());
  EXPECT_EQ(dc.net.structure(), DualGraph::Structure::dual_clique);
  EXPECT_EQ(dc.net.dual_half(), 12);
  EXPECT_EQ(dc.net.dual_bridge_a(), 5);
  EXPECT_EQ(dc.net.dual_bridge_b(), 17);
  // Structured networks skip bitmap materialization: the structured
  // resolver path supersedes it.
  EXPECT_EQ(dc.net.g_bitmap(), nullptr);
}

TEST(StructureDetection, BridgelessExplicitDualCliqueIsTagged) {
  const DualCliqueNet dc = dual_clique_without_bridge(16);
  EXPECT_EQ(dc.net.structure(), DualGraph::Structure::dual_clique);
  EXPECT_EQ(dc.net.dual_bridge_a(), -1);
  EXPECT_FALSE(dc.net.g_connected());
}

TEST(StructureDetection, CompleteGprimeWithoutCliqueShapeIsNotDualClique) {
  const DualGraph net(line_graph(8), complete_graph(8));
  EXPECT_EQ(net.structure(), DualGraph::Structure::gprime_complete);
  EXPECT_TRUE(net.gprime_complete());
}

TEST(StructureDetection, TwoBridgesAreNotADualClique) {
  Graph g(8);
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      g.add_edge(u, v);
      g.add_edge(4 + u, 4 + v);
    }
  }
  g.add_edge(0, 4);
  g.add_edge(1, 5);
  g.finalize();
  const DualGraph net(std::move(g), complete_graph(8));
  EXPECT_EQ(net.structure(), DualGraph::Structure::gprime_complete);
}

TEST(StructureDetection, GeneralNetworksStayUntagged) {
  const GeoNet geo = [] {
    Rng rng(3);
    return jittered_grid_geo(4, 4, 0.6, 0.05, 2.0, rng);
  }();
  EXPECT_EQ(geo.net.structure(), DualGraph::Structure::general);
  EXPECT_FALSE(geo.net.gprime_complete());
}

TEST(ImplicitDualGraph, GeneratorSwitchesRepresentationAtThreshold) {
  EXPECT_FALSE(dual_clique(kDualCliqueImplicitMinN - 2, 1).net.is_implicit());
  EXPECT_TRUE(dual_clique(kDualCliqueImplicitMinN, 1).net.is_implicit());
}

}  // namespace
}  // namespace dualcast
