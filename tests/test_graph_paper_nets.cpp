// Structural tests for the paper's two lower-bound networks: the §3 dual
// clique and the §4.2 bracelet.

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace dualcast {
namespace {

class DualCliqueParam : public ::testing::TestWithParam<int> {};

TEST_P(DualCliqueParam, Structure) {
  const int n = GetParam();
  const DualCliqueNet dc = dual_clique(n);
  EXPECT_EQ(dc.net.n(), n);
  EXPECT_EQ(static_cast<int>(dc.side_a.size()), n / 2);
  EXPECT_EQ(static_cast<int>(dc.side_b.size()), n / 2);

  // G: two cliques plus one bridge.
  const std::int64_t half = n / 2;
  EXPECT_EQ(dc.net.g().edge_count(), half * (half - 1) + 1);
  EXPECT_TRUE(dc.net.g().has_edge(dc.bridge_a, dc.bridge_b));
  EXPECT_TRUE(dc.net.g().is_connected());

  // G' complete (so the fast path applies).
  EXPECT_TRUE(dc.net.gprime_complete());

  // Constant diameter: at most 3 (across the bridge).
  EXPECT_LE(dc.net.g().diameter(), 3);
}

TEST_P(DualCliqueParam, SidesAreCliquesAndOnlyBridgeCrosses) {
  const int n = GetParam();
  const DualCliqueNet dc = dual_clique(n, /*bridge_index=*/1);
  for (std::size_t i = 0; i < dc.side_a.size(); ++i) {
    for (std::size_t j = i + 1; j < dc.side_a.size(); ++j) {
      EXPECT_TRUE(dc.net.g().has_edge(dc.side_a[i], dc.side_a[j]));
      EXPECT_TRUE(dc.net.g().has_edge(dc.side_b[i], dc.side_b[j]));
    }
  }
  int cross_edges = 0;
  for (const int a : dc.side_a) {
    for (const int b : dc.side_b) {
      if (dc.net.g().has_edge(a, b)) {
        ++cross_edges;
        EXPECT_EQ(a, dc.bridge_a);
        EXPECT_EQ(b, dc.bridge_b);
      }
    }
  }
  EXPECT_EQ(cross_edges, 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DualCliqueParam,
                         ::testing::Values(4, 8, 16, 64, 128));

TEST(DualClique, BridgeIndexSelectsEndpoints) {
  const DualCliqueNet dc = dual_clique(16, 5);
  EXPECT_EQ(dc.bridge_a, 5);
  EXPECT_EQ(dc.bridge_b, 8 + 5);
}

TEST(DualClique, RejectsBadSizes) {
  EXPECT_THROW(dual_clique(3), ContractViolation);
  EXPECT_THROW(dual_clique(7), ContractViolation);
  EXPECT_THROW(dual_clique(8, 4), ContractViolation);  // index out of side
}

TEST(DualClique, WithoutBridgeIsDisconnectedButGPrimeComplete) {
  const DualCliqueNet dc = dual_clique_without_bridge(12);
  EXPECT_FALSE(dc.net.g().is_connected());
  EXPECT_TRUE(dc.net.gprime_complete());
  EXPECT_FALSE(dc.net.g().has_edge(dc.bridge_a, dc.bridge_b));
}

class BraceletParam : public ::testing::TestWithParam<int> {};

TEST_P(BraceletParam, Structure) {
  const int n_target = GetParam();
  const BraceletNet br = bracelet(n_target);
  const int k = br.band_len;
  EXPECT_GE(k, 2);
  EXPECT_EQ(br.net.n(), 2 * k * k);
  EXPECT_LE(br.net.n(), n_target);
  ASSERT_EQ(static_cast<int>(br.heads_a.size()), k);
  ASSERT_EQ(static_cast<int>(br.heads_b.size()), k);
  ASSERT_EQ(static_cast<int>(br.bands.size()), 2 * k);
  EXPECT_TRUE(br.net.g().is_connected());
}

TEST_P(BraceletParam, BandsAreReliablePaths) {
  const BraceletNet br = bracelet(GetParam());
  const int k = br.band_len;
  for (const auto& band : br.bands) {
    ASSERT_EQ(static_cast<int>(band.size()), k);
    for (int pos = 0; pos + 1 < k; ++pos) {
      EXPECT_TRUE(br.net.g().has_edge(band[static_cast<std::size_t>(pos)],
                                      band[static_cast<std::size_t>(pos + 1)]));
    }
  }
}

TEST_P(BraceletParam, GPrimeOnlyEdgesAreExactlyCrossHeadPairs) {
  const BraceletNet br = bracelet(GetParam());
  std::set<std::pair<int, int>> expected;
  for (const int a : br.heads_a) {
    for (const int b : br.heads_b) {
      if (a == br.clasp_a && b == br.clasp_b) continue;  // clasp is in G
      expected.insert({std::min(a, b), std::max(a, b)});
    }
  }
  std::set<std::pair<int, int>> actual(br.net.gp_only_edges().begin(),
                                       br.net.gp_only_edges().end());
  EXPECT_EQ(actual, expected);
}

TEST_P(BraceletParam, ClaspConnectsMatchingHeads) {
  const BraceletNet br = bracelet(GetParam(), /*clasp_index=*/1);
  EXPECT_TRUE(br.net.g().has_edge(br.clasp_a, br.clasp_b));
  EXPECT_EQ(br.clasp_a, br.heads_a[1]);
  EXPECT_EQ(br.clasp_b, br.heads_b[1]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BraceletParam,
                         ::testing::Values(8, 32, 100, 512, 2048));

TEST(Bracelet, FarEndpointsFormClique) {
  const BraceletNet br = bracelet(72);  // k = 6
  const int k = br.band_len;
  for (std::size_t i = 0; i < br.bands.size(); ++i) {
    for (std::size_t j = i + 1; j < br.bands.size(); ++j) {
      EXPECT_TRUE(br.net.g().has_edge(
          br.bands[i][static_cast<std::size_t>(k - 1)],
          br.bands[j][static_cast<std::size_t>(k - 1)]));
    }
  }
}

TEST(Bracelet, DiameterIsOrderBandLength) {
  const BraceletNet br = bracelet(128);  // k = 8
  const int diam = br.net.g().diameter();
  EXPECT_GE(diam, br.band_len);
  EXPECT_LE(diam, 2 * br.band_len + 2);
}

TEST(Bracelet, RejectsTooSmall) {
  EXPECT_THROW(bracelet(4), ContractViolation);
}

}  // namespace
}  // namespace dualcast
