// Integration: small-scale end-to-end checks of the Figure 1 ordering —
// for the same algorithm family, stronger adversary classes cost strictly
// more rounds, and the paper's algorithms are fast exactly in the regimes
// the upper bounds claim.

#include <gtest/gtest.h>

#include "adversary/dense_sparse.hpp"
#include "adversary/offline_collider.hpp"
#include "adversary/schedule_attack.hpp"
#include "adversary/static_adversaries.hpp"
#include "core/factories.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"
#include "util/mathutil.hpp"

namespace dualcast {
namespace {

using testing::median_rounds;
using testing::run_global;
using testing::run_local;

DecayGlobalConfig persistent(ScheduleKind kind) {
  DecayGlobalConfig cfg = DecayGlobalConfig::fast(kind);
  cfg.calls = DecayGlobalConfig::kUnbounded;
  return cfg;
}

TEST(Fig1Integration, GlobalBroadcastAdversaryHierarchyOnDualClique) {
  // Permuted decay on the dual clique: oblivious (benign & adversarial
  // schedules) is polylog; online adaptive and offline adaptive drive it to
  // ~linear. The measured ordering must be:
  //   oblivious << online <= offline.
  const int n = 256;
  const DualCliqueNet dc = dual_clique(n, n / 4);
  const int max_rounds = 300 * n;
  const auto measure = [&](LinkProcessFactory make_adversary,
                           std::uint64_t base) {
    return median_rounds(5, base, max_rounds, [&](std::uint64_t seed) {
      return run_global(dc.net,
                        decay_global_factory(persistent(ScheduleKind::permuted)),
                        make_adversary(), /*source=*/1, seed, max_rounds);
    });
  };
  const double oblivious = measure(
      [] { return std::make_unique<RandomIidEdges>(0.5); }, 1000);
  const double online = measure(
      [] {
        return std::make_unique<DenseSparseOnline>(DenseSparseConfig{0.5});
      },
      2000);
  const double offline = measure(
      [] { return std::make_unique<GreedyColliderOffline>(); }, 3000);

  EXPECT_GE(online, 3.0 * oblivious)
      << "oblivious=" << oblivious << " online=" << online;
  EXPECT_GE(offline, online)
      << "online=" << online << " offline=" << offline;
}

TEST(Fig1Integration, StaticModelMatchesProtocolBounds) {
  // Bottom row of Figure 1: in the protocol model (G = G'), global broadcast
  // is Θ(D log(n/D) + log² n) — concretely, far faster than n on a clique,
  // and ~D-dominated on a line.
  const DualGraph clique = DualGraph::protocol(complete_graph(256));
  const double clique_rounds = median_rounds(5, 1, 20000, [&](std::uint64_t s) {
    return run_global(clique, decay_global_factory(DecayGlobalConfig::fast()),
                      std::make_unique<NoExtraEdges>(), 0, s, 20000);
  });
  EXPECT_LT(clique_rounds, 256.0);  // polylog, not linear

  const DualGraph line = DualGraph::protocol(line_graph(256));
  const double line_rounds = median_rounds(3, 1, 500000, [&](std::uint64_t s) {
    return run_global(line, decay_global_factory(DecayGlobalConfig::fast()),
                      std::make_unique<NoExtraEdges>(), 0, s, 500000);
  });
  EXPECT_GT(line_rounds, 255.0);  // at least one round per hop
}

TEST(Fig1Integration, LocalBroadcastGeoVsGeneralSeparation) {
  // Third row of Figure 1: under oblivious adversaries, local broadcast is
  // polylog on geographic graphs (Thm 4.6) while general graphs admit the
  // Ω(√n/log n) bracelet delay. We compare the geo algorithm's solve time on
  // a geo graph against the bracelet clasp delay at comparable size, both
  // normalized by their benign baselines elsewhere; here we simply check the
  // geo algorithm completes within its scheduled O(log²n logΔ) window.
  Rng rng(7);
  const GeoNet geo = jittered_grid_geo(8, 8, 0.5, 0.05, 2.0, rng);
  std::vector<int> b;
  for (int v = 0; v < geo.net.n(); v += 3) b.push_back(v);

  Execution exec(geo.net, geo_local_factory(GeoLocalConfig::fast()),
                 std::make_shared<LocalBroadcastProblem>(geo.net, b),
                 std::make_unique<RandomIidEdges>(0.5), {3, 1 << 20, {}});
  const auto* proc = dynamic_cast<const GeoLocalBroadcast*>(&exec.process(0));
  ASSERT_NE(proc, nullptr);
  const RunResult result = exec.run();
  ASSERT_TRUE(result.solved);
  EXPECT_LE(result.rounds, proc->total_length());
}

TEST(Fig1Integration, RoundRobinMeetsTheAdaptiveUpperBounds) {
  // First row upper bounds: O(n)-ish deterministic broadcast regardless of
  // adversary class, on the very networks the lower bounds use.
  const int n = 128;
  const DualCliqueNet dc = dual_clique(n, 9);
  for (int adversary = 0; adversary < 2; ++adversary) {
    std::unique_ptr<LinkProcess> lp;
    if (adversary == 0) {
      lp = std::make_unique<GreedyColliderOffline>();
    } else {
      lp = std::make_unique<DenseSparseOnline>(DenseSparseConfig{1.0});
    }
    const RunResult global = run_global(
        dc.net, round_robin_factory(RoundRobinConfig{true}), std::move(lp),
        /*source=*/2, /*seed=*/5, /*max_rounds=*/4 * n);
    ASSERT_TRUE(global.solved);
    EXPECT_LE(global.rounds, 3 * n);
  }
}

TEST(Fig1Integration, PermutedVsFixedSeparationIsObliviousOnly) {
  // The permutation bits matter against oblivious schedule attacks (§4.1)
  // but cannot help against online adaptive adversaries (§3) — the
  // algorithm-level ablation of the paper's core mechanism.
  const int n = 256;
  const DualCliqueNet dc = dual_clique(n, n / 4);
  const int max_rounds = 300 * n;
  const int ladder = clog2(static_cast<std::uint64_t>(n));
  const int window_start = 4 * ladder;

  const auto anti_schedule = [&]() {
    ScheduleAttackConfig cfg;
    cfg.predicted_transmitters = [n, ladder, window_start](int round) {
      if (round == 0) return 1.0;
      if (round < window_start) return 0.0;
      return (n / 2.0) * fixed_decay_probability(round, ladder);
    };
    cfg.threshold_factor = 0.5;
    return std::make_unique<ScheduleAttackOblivious>(cfg);
  };

  const auto measure = [&](ScheduleKind kind, bool online,
                           std::uint64_t base) {
    return median_rounds(5, base, max_rounds, [&](std::uint64_t seed) {
      std::unique_ptr<LinkProcess> lp;
      if (online) {
        lp = std::make_unique<DenseSparseOnline>(DenseSparseConfig{0.5});
      } else {
        lp = anti_schedule();
      }
      return run_global(dc.net, decay_global_factory(persistent(kind)),
                        std::move(lp), /*source=*/1, seed, max_rounds);
    });
  };

  const double fixed_vs_oblivious = measure(ScheduleKind::fixed, false, 10);
  const double permuted_vs_oblivious = measure(ScheduleKind::permuted, false, 20);
  const double permuted_vs_online = measure(ScheduleKind::permuted, true, 30);

  // Permutation defeats the oblivious attack...
  EXPECT_GE(fixed_vs_oblivious, 3.0 * permuted_vs_oblivious);
  // ...but not the online adaptive one.
  EXPECT_GE(permuted_vs_online, 3.0 * permuted_vs_oblivious);
}

}  // namespace
}  // namespace dualcast
