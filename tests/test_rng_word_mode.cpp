// The `word` RNG mode's validation contract: it is NOT byte-identical to
// the per-node mode (different streams feed the per-round coins), but every
// per-trial *distribution* must be unchanged — word-parallel masks are the
// same Bernoulli(2^-i) coins, just drawn 64 lanes at a time. We check
// completion-round distributions over >= 200 seeds on three catalog-shaped
// scenarios covering the three word-mode kernels (global decay, local
// decay, gossip) with both shared and divergent ladder indices, via a
// two-sample Kolmogorov–Smirnov bound plus quantile ratios. Fixed seeds
// make the test deterministic; the bounds sit well above the KS alpha=0.001
// critical value for these sample sizes.
//
// Also pinned here: word mode is deterministic (same seed -> same run), and
// it actually diverges from per-node mode (the test would otherwise be
// vacuous).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "scenario/registries.hpp"
#include "sim/kernel_execution.hpp"

namespace dualcast {
namespace {

using scenario::Topology;

struct WordModeCase {
  std::string name;
  std::string topology;
  std::string algorithm;
  std::string adversary;
  std::string problem;
  int max_rounds;
  std::uint64_t base_seed;
};

std::vector<WordModeCase> word_mode_cases() {
  return {
      // Global decay, fixed schedule: every holder shares one ladder index
      // (the single-mask word path).
      {"decay_global/fixed", "dual_clique(64)",
       "decay_global(fixed,persistent)", "iid(0.5)", "global(1)", 20000, 900},
      // Local decay, permuted schedule: per-node divergent indices (the
      // lazy prefix-mask ladder path).
      {"decay_local/permuted", "dual_clique(48)", "decay_local(permuted)",
       "iid(0.4)", "local(side_a)", 20000, 1400},
      // Gossip: dynamic holder set, token rotation on top of the coins.
      {"gossip", "line_overlay(64,4)", "gossip", "iid(0.5)", "gossip(4)",
       6000, 2500},
  };
}

double run_trial(const WordModeCase& c, const Topology& topo,
                 std::uint64_t seed, RngMode mode) {
  const ProcessFactory factory = scenario::algorithms().build(c.algorithm);
  const KernelFactory kernel = scenario::build_kernel_or_null(c.algorithm);
  std::shared_ptr<Problem> problem =
      scenario::problems().build(c.problem, topo)();
  std::unique_ptr<AlgorithmKernel> k =
      scenario::select_kernel(kernel, *problem, factory);
  KernelExecution exec(topo.net(), factory, std::move(k), std::move(problem),
                       scenario::adversaries().build(c.adversary, topo)(),
                       ExecutionConfig{}
                           .with_seed(seed)
                           .with_max_rounds(c.max_rounds)
                           .with_history_policy(HistoryPolicy::lean)
                           .with_rng_mode(mode));
  const RunResult result = exec.run();
  // Censored trials keep their cap value: both modes censor at the same
  // budget, so the comparison stays valid.
  return static_cast<double>(result.rounds);
}

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j]) {
      ++i;
    } else {
      ++j;
    }
    d = std::max(d, std::fabs(static_cast<double>(i) / a.size() -
                              static_cast<double>(j) / b.size()));
  }
  return d;
}

double quantile_of(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[idx];
}

TEST(WordRngMode, CompletionRoundsAreDistributionallyEquivalent) {
  constexpr int kTrials = 220;
  for (const WordModeCase& c : word_mode_cases()) {
    SCOPED_TRACE(c.name);
    const Topology topo = scenario::topologies().build(c.topology, 5);
    std::vector<double> per_node;
    std::vector<double> word;
    per_node.reserve(kTrials);
    word.reserve(kTrials);
    for (int t = 0; t < kTrials; ++t) {
      const std::uint64_t seed = c.base_seed + static_cast<std::uint64_t>(t);
      per_node.push_back(run_trial(c, topo, seed, RngMode::per_node));
      word.push_back(run_trial(c, topo, seed, RngMode::word));
    }
    // Non-vacuousness: the modes draw different sample paths.
    EXPECT_NE(per_node, word);

    // KS two-sample bound: critical value at alpha=0.001 for n=m=220 is
    // 1.95 * sqrt(2/220) ~= 0.186; allow a little headroom.
    const double d = ks_statistic(per_node, word);
    EXPECT_LT(d, 0.2) << "KS statistic " << d;

    // Quantile ratios across the bulk of the distribution.
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      const double qa = quantile_of(per_node, q);
      const double qb = quantile_of(word, q);
      ASSERT_GT(qa, 0.0);
      EXPECT_GT(qb / qa, 0.75) << "quantile " << q;
      EXPECT_LT(qb / qa, 1.3333) << "quantile " << q;
    }
  }
}

TEST(WordRngMode, DeterministicPerSeed) {
  const WordModeCase c = word_mode_cases()[0];
  const Topology topo = scenario::topologies().build(c.topology, 5);
  for (std::uint64_t seed = 7000; seed < 7004; ++seed) {
    EXPECT_EQ(run_trial(c, topo, seed, RngMode::word),
              run_trial(c, topo, seed, RngMode::word));
  }
}

}  // namespace
}  // namespace dualcast
