// The large-n acceptance surface of the blocked-bitmap resolver: at
// n = 16384 (4x the old flat-row kBitmapMaxN cap) a jgrid+iid scenario must
// run start-to-solve entirely on the dense (bitmap) path — no fallback to
// the CSR sweep — and produce exactly the sweep path's execution.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "scenario/registries.hpp"
#include "sim/kernel_execution.hpp"

namespace dualcast {
namespace {

using scenario::Topology;

KernelExecution make_exec(const Topology& topo, int max_rounds) {
  const ProcessFactory factory =
      scenario::algorithms().build("decay_local");
  const KernelFactory kernel = scenario::build_kernel_or_null("decay_local");
  std::shared_ptr<Problem> problem =
      scenario::problems().build("local(every(3))", topo)();
  std::unique_ptr<AlgorithmKernel> k =
      scenario::select_kernel(kernel, *problem, factory);
  return KernelExecution(topo.net(), factory, std::move(k),
                         std::move(problem),
                         scenario::adversaries().build("iid(0.3)", topo)(),
                         ExecutionConfig{}
                             .with_seed(11)
                             .with_max_rounds(max_rounds)
                             .with_history_policy(HistoryPolicy::full));
}

TEST(ScaleDensePath, JgridAt16kCompletesOnBlockedBitmapsExactly) {
  // The scale/jgrid-iid point at side 128: n = 16384.
  const Topology topo =
      scenario::topologies().build("jgrid(128,128,0.5,0.05,2.0)", 3);
  ASSERT_EQ(topo.n(), 16384);
  // Blocked bitmaps exist past the old n = 4096 flat-row cap...
  ASSERT_NE(topo.net().g_bitmap(), nullptr);
  ASSERT_NE(topo.net().gp_only_bitmap(), nullptr);
  EXPECT_EQ(topo.net().g_bitmap()->n(), 16384);

  // ...and the dense path can carry a whole execution to completion.
  const int budget = 4000;
  KernelExecution bitmap_exec = make_exec(topo, budget);
  bitmap_exec.resolver().force_path(DeliveryResolver::Path::bitmap);
  const RunResult bitmap_result = bitmap_exec.run();
  EXPECT_TRUE(bitmap_result.solved) << "censored at " << budget;
  EXPECT_EQ(bitmap_exec.resolver().last_path(),
            DeliveryResolver::Path::bitmap);

  // The forced-sweep replay is byte-identical: same solve round, same
  // transmitters, same delivery sets (order may differ between strategies).
  KernelExecution sweep_exec = make_exec(topo, budget);
  sweep_exec.resolver().force_path(DeliveryResolver::Path::sweep);
  const RunResult sweep_result = sweep_exec.run();
  ASSERT_EQ(bitmap_result.solved, sweep_result.solved);
  ASSERT_EQ(bitmap_result.rounds, sweep_result.rounds);
  EXPECT_EQ(bitmap_exec.first_receive_round(),
            sweep_exec.first_receive_round());

  const auto& b_records = bitmap_exec.history().records();
  const auto& s_records = sweep_exec.history().records();
  ASSERT_EQ(b_records.size(), s_records.size());
  for (std::size_t r = 0; r < b_records.size(); ++r) {
    ASSERT_EQ(b_records[r].transmitters, s_records[r].transmitters)
        << "round " << r;
    const auto key = [](const Delivery& d) {
      return std::tuple(d.receiver, d.sender, d.transmitter_index);
    };
    std::vector<std::tuple<int, int, int>> db;
    std::vector<std::tuple<int, int, int>> ds;
    for (const Delivery& d : b_records[r].deliveries) db.push_back(key(d));
    for (const Delivery& d : s_records[r].deliveries) ds.push_back(key(d));
    std::sort(db.begin(), db.end());
    std::sort(ds.begin(), ds.end());
    ASSERT_EQ(db, ds) << "round " << r;
  }
}

}  // namespace
}  // namespace dualcast
