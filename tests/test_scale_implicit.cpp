// The large-n acceptance surface of the implicit layers: dual_clique(65536)
// — whose explicit CSR layers would need ~32 GiB — must construct in O(n)
// memory, report the right structure, and carry a global-broadcast
// execution start-to-solve on the structured resolver path.

#include <gtest/gtest.h>

#include <memory>

#include "scenario/registries.hpp"
#include "sim/kernel_execution.hpp"

namespace dualcast {
namespace {

using scenario::Topology;

TEST(ScaleImplicit, DualClique65536StaysUnderMemoryBudget) {
  const Topology topo = scenario::topologies().build("dual_clique(65536)", 3);
  const DualGraph& net = topo.net();
  ASSERT_EQ(net.n(), 65536);
  EXPECT_TRUE(net.is_implicit());
  EXPECT_EQ(net.structure(), DualGraph::Structure::dual_clique);
  EXPECT_TRUE(net.gprime_complete());
  EXPECT_EQ(net.max_degree(), 65535);
  EXPECT_EQ(net.gp_only_edge_count(),
            static_cast<std::int64_t>(32768) * 32768 - 1);

  // Explicit storage: ~2^31 gp-only edges x (pair + 2 CSR entries + 2 edge
  // indices) ≈ 32 GiB, plus the two Graph layers. The implicit
  // representation must stay under a budget three orders of magnitude
  // smaller (O(1) for the network itself; the topology's side_a/side_b
  // metadata is O(n)).
  EXPECT_LT(net.approx_heap_bytes(), std::size_t{8} << 20);

  // Spot-check the edge-index decode at the extremes and around the
  // bridge hole.
  EXPECT_EQ(net.gp_only_edge(0), (std::pair<int, int>{0, 32768}));
  EXPECT_EQ(net.gp_only_edge(net.gp_only_edge_count() - 1),
            (std::pair<int, int>{32767, 65535}));
  const int ta = net.dual_bridge_a();
  const int tb = net.dual_bridge_b();
  for (std::int64_t e = 0; e < net.gp_only_edge_count(); e += 104729) {
    const auto [u, v] = net.gp_only_edge(e);
    EXPECT_FALSE(u == ta && v == tb) << "bridge pair appeared at index " << e;
  }
}

TEST(ScaleImplicit, DualCliqueGTopologyWorksPastImplicitThreshold) {
  // dual_clique_g needs a materialized G layer; it must keep working at
  // sizes where dual_clique() itself is implicit.
  const Topology topo = scenario::topologies().build("dual_clique_g(2048)", 3);
  EXPECT_FALSE(topo.net().is_implicit());
  EXPECT_TRUE(topo.net().g_connected());
  EXPECT_EQ(topo.net().gp_only_edge_count(), 0);  // protocol model: G' == G
}

TEST(ScaleImplicit, DualClique65536RunsStartToSolve) {
  const Topology topo = scenario::topologies().build("dual_clique(65536)", 3);
  const std::string algo = "decay_global(fixed,persistent)";
  const ProcessFactory factory = scenario::algorithms().build(algo);
  const KernelFactory kernel = scenario::build_kernel_or_null(algo);
  std::shared_ptr<Problem> problem =
      scenario::problems().build("global(1)", topo)();
  std::unique_ptr<AlgorithmKernel> k =
      scenario::select_kernel(kernel, *problem, factory);
  KernelExecution exec(topo.net(), factory, std::move(k), std::move(problem),
                       scenario::adversaries().build("none", topo)(),
                       ExecutionConfig{}
                           .with_seed(7)
                           .with_max_rounds(6000)
                           .with_history_policy(HistoryPolicy::lean));
  const RunResult result = exec.run();
  EXPECT_TRUE(result.solved) << "censored at " << result.rounds;
  EXPECT_EQ(exec.resolver().last_path(), DeliveryResolver::Path::structured);
}

}  // namespace
}  // namespace dualcast
