// Spec canonicalization and hashing: the identity layer under the
// experiment service's job store and result cache. Injective
// serialization (length-prefixed fields), hash_hex round-trips, and
// catalog_hash sensitivity to registration.

#include <gtest/gtest.h>

#include "scenario/plan.hpp"
#include "scenario/scenario.hpp"
#include "scenario/spec.hpp"

namespace dualcast::scenario {
namespace {

ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.name = "canon/base";
  spec.title = "titles are presentation, not identity";
  spec.topology = "dual_clique({x})";
  spec.problem = "global(1)";
  spec.sweep = {16, 32};
  spec.trials = 4;
  spec.base_seed = 9;
  spec.max_rounds = "200*n";
  spec.columns = {
      {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
      {"robin+collider", "round_robin", "collider", ""},
  };
  return spec;
}

TEST(CanonicalSpec, DeterministicAndPresentationBlind) {
  EXPECT_EQ(canonical_spec_string(base_spec()),
            canonical_spec_string(base_spec()));
  // Banner/note text never reaches the canonical form: identical
  // experiments with different prose share job and cache entries.
  ScenarioSpec retitled = base_spec();
  retitled.title = "different banner";
  retitled.note = "different note";
  retitled.paper_claim = "different claim";
  EXPECT_EQ(canonical_spec_string(retitled),
            canonical_spec_string(base_spec()));
}

TEST(CanonicalSpec, EveryResultSelectingFieldChangesTheString) {
  const std::string base = canonical_spec_string(base_spec());
  const auto differs = [&](auto&& mutate) {
    ScenarioSpec spec = base_spec();
    mutate(spec);
    return canonical_spec_string(spec) != base;
  };
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.name += "x"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.topology = "line_overlay({x},3)"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.problem = "global(2)"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.metric = "first_receive(m)"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.sweep.push_back(64); }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.sweep[0] = 17; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.trials += 1; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.base_seed += 1; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.topology_seed += 1; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.max_rounds = "201*n"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.smoke_x = 16; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.columns[0].algorithm = "round_robin"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.columns[0].adversary = "none"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.columns[0].problem = "global(1)"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.columns.pop_back(); }));
}

TEST(CanonicalSpec, LengthPrefixingDefeatsConcatenationCollisions) {
  // Adjacent fields may not blur into each other: moving a character
  // across a field boundary must change the canonical form.
  ScenarioSpec a = base_spec();
  a.name = "canon/ab";
  a.topology = "cd";
  ScenarioSpec b = base_spec();
  b.name = "canon/a";
  b.topology = "bcd";
  EXPECT_NE(canonical_spec_string(a), canonical_spec_string(b));

  // Same for list-valued fields: one column of "xy" vs two of "x","y"
  // in the label position.
  ScenarioSpec one = base_spec();
  one.columns = {{"xy", "round_robin", "none", ""}};
  ScenarioSpec two = base_spec();
  two.columns = {{"x", "round_robin", "none", ""},
                 {"y", "round_robin", "none", ""}};
  EXPECT_NE(canonical_spec_string(one), canonical_spec_string(two));
}

TEST(CanonicalSpec, AppliedOptionsReachTheCanonicalForm) {
  // The service hashes *applied* specs, so overrides that change results
  // must change the string.
  RunOptions fewer;
  fewer.trials_override = 2;
  EXPECT_NE(canonical_spec_string(apply_options(base_spec(), fewer)),
            canonical_spec_string(apply_options(base_spec(), {})));
  RunOptions smoke;
  smoke.smoke = true;
  EXPECT_NE(canonical_spec_string(apply_options(base_spec(), smoke)),
            canonical_spec_string(apply_options(base_spec(), {})));
}

TEST(SpecHash, HashHexRoundTripsAndRejectsGarbage) {
  for (const std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{1}, kFnvOffsetBasis,
        std::uint64_t{0xffffffffffffffffULL}}) {
    const std::string hex = hash_hex(value);
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(parse_hash_hex(hex), value);
  }
  EXPECT_THROW(parse_hash_hex(""), ScenarioError);
  EXPECT_THROW(parse_hash_hex("xyz"), ScenarioError);
  EXPECT_THROW(parse_hash_hex("0123456789abcdeg"), ScenarioError);
}

TEST(SpecHash, Fnv1a64MatchesKnownVectorsAndChains) {
  EXPECT_EQ(fnv1a64(""), kFnvOffsetBasis);
  // Published FNV-1a test vector.
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  // Chaining is concatenation over one stream, so the seeded form must
  // agree with hashing the joined text.
  EXPECT_EQ(fnv1a64("world", fnv1a64("hello")), fnv1a64("helloworld"));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

TEST(CatalogHash, StableWithinAProcessAndSensitiveToRegistration) {
  const std::uint64_t before = catalog_hash();
  EXPECT_EQ(before, catalog_hash());
  ScenarioSpec extra = base_spec();
  extra.name = "canon/registered-later";
  scenarios().add(extra);
  EXPECT_NE(catalog_hash(), before);
  EXPECT_EQ(catalog_hash(), catalog_hash());
}

}  // namespace
}  // namespace dualcast::scenario
