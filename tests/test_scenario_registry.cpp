// Scenario subsystem: spec parsing and the string-keyed registries —
// register -> lookup -> parse-with-params -> instantiate round trips, plus
// the unknown-name and bad-parameter error paths.

#include <gtest/gtest.h>

#include "core/factories.hpp"
#include "scenario/registries.hpp"
#include "scenario/scenario.hpp"
#include "sim/execution.hpp"

namespace dualcast::scenario {
namespace {

// ---------------------------------------------------------------------------
// parse_call
// ---------------------------------------------------------------------------

TEST(SpecParse, BareName) {
  const SpecCall call = parse_call("none");
  EXPECT_EQ(call.name, "none");
  EXPECT_TRUE(call.args.empty());
}

TEST(SpecParse, SimpleArgs) {
  const SpecCall call = parse_call("iid(0.5)");
  EXPECT_EQ(call.name, "iid");
  ASSERT_EQ(call.args.size(), 1u);
  EXPECT_EQ(call.args[0], "0.5");
}

TEST(SpecParse, MultipleArgsWithSpaces) {
  const SpecCall call = parse_call("jgrid(12, 12, 0.6, 0.05, 2.0)");
  EXPECT_EQ(call.name, "jgrid");
  ASSERT_EQ(call.args.size(), 5u);
  EXPECT_EQ(call.args[1], "12");
  EXPECT_EQ(call.args[3], "0.05");
}

TEST(SpecParse, NestedCallStaysOneArg) {
  const SpecCall call = parse_call("local(every(3),strict)");
  EXPECT_EQ(call.name, "local");
  ASSERT_EQ(call.args.size(), 2u);
  EXPECT_EQ(call.args[0], "every(3)");
  EXPECT_EQ(call.args[1], "strict");
}

TEST(SpecParse, EmptyArgListIsZeroArgs) {
  const SpecCall call = parse_call("gossip()");
  EXPECT_EQ(call.name, "gossip");
  EXPECT_TRUE(call.args.empty());
}

TEST(SpecParse, Malformed) {
  EXPECT_THROW(parse_call(""), ScenarioError);
  EXPECT_THROW(parse_call("iid(0.5"), ScenarioError);
  EXPECT_THROW(parse_call("iid)0.5("), ScenarioError);
  EXPECT_THROW(parse_call("iid(0.5))"), ScenarioError);
  EXPECT_THROW(parse_call("iid(a,,b)"), ScenarioError);
  EXPECT_THROW(parse_call("(0.5)"), ScenarioError);
}

TEST(SpecParse, TypedAccessors) {
  const SpecCall call = parse_call("f(3,2.5,word)");
  const SpecArgs args(call);
  EXPECT_EQ(args.int_at(0), 3);
  EXPECT_DOUBLE_EQ(args.double_at(1), 2.5);
  EXPECT_EQ(args.str_at(2), "word");
  EXPECT_EQ(args.int_or(5, 7), 7);
  EXPECT_THROW(args.int_at(2), ScenarioError);   // "word" is not an int
  EXPECT_THROW(args.double_at(2), ScenarioError);
  EXPECT_THROW(args.str_at(3), ScenarioError);   // out of range
  EXPECT_THROW(args.expect_count(0, 2), ScenarioError);
}

TEST(SpecParse, SubstituteX) {
  EXPECT_EQ(substitute_x("dual_clique({x})", 256), "dual_clique(256)");
  EXPECT_EQ(substitute_x("jgrid(12,12,{x},0.04,2.0)", 0.35),
            "jgrid(12,12,0.35,0.04,2.0)");
  EXPECT_EQ(substitute_x("a{x}b{x}", 2), "a2b2");
  EXPECT_EQ(substitute_x("no placeholder", 9), "no placeholder");
}

TEST(SpecParse, ResolveRounds) {
  const std::map<std::string, double> vars{
      {"x", 16}, {"n", 128}, {"band_len", 12}};
  EXPECT_EQ(resolve_rounds("300*n", vars), 38400);
  EXPECT_EQ(resolve_rounds("3000*x+20000", vars), 68000);
  EXPECT_EQ(resolve_rounds("200*band_len", vars), 2400);
  EXPECT_EQ(resolve_rounds("2097152", vars), 2097152);
  EXPECT_EQ(resolve_rounds("n", vars), 128);
  EXPECT_THROW(resolve_rounds("300*q", vars), ScenarioError);
  EXPECT_THROW(resolve_rounds("", vars), ScenarioError);
}

// ---------------------------------------------------------------------------
// Registries: round trips
// ---------------------------------------------------------------------------

TEST(Registries, TopologyRoundTrip) {
  const Topology topo = topologies().build("dual_clique(64)", 1);
  EXPECT_EQ(topo.n(), 64);
  EXPECT_EQ(topo.node_set("side_a").size(), 32u);
  EXPECT_EQ(topo.mark("bridge_a"), topo.node_set("side_a")[16]);
  ASSERT_NE(topo.dual_clique, nullptr);
  // The execution-facing net is the construction's net, not a copy.
  EXPECT_EQ(&topo.net(), &topo.dual_clique->net);
}

TEST(Registries, BraceletMetadata) {
  const Topology topo = topologies().build("bracelet(128)", 1);
  EXPECT_EQ(topo.mark("band_len"), 8);
  EXPECT_EQ(topo.node_set("heads_a").size(), 8u);
  ASSERT_NE(topo.bracelet, nullptr);
}

TEST(Registries, AlgorithmAndAdversaryInstantiate) {
  const Topology topo = topologies().build("dual_clique(32)", 1);
  const ProcessFactory factory =
      algorithms().build("decay_global(permuted,persistent)");
  const LinkProcessFactory adversary = adversaries().build("iid(0.5)", topo);
  const ProblemFactory problem = problems().build("global(1)", topo);
  // Everything pluggable into a real execution.
  Execution exec(topo.net(), factory, problem(), adversary(),
                 ExecutionConfig{}.with_seed(3).with_max_rounds(5000));
  const RunResult result = exec.run();
  EXPECT_TRUE(result.solved);
}

TEST(Registries, ProblemFactoryMakesFreshInstances) {
  const Topology topo = topologies().build("dual_clique(16)", 1);
  const ProblemFactory problem = problems().build("local(side_a)", topo);
  const auto a = problem();
  const auto b = problem();
  EXPECT_NE(a.get(), b.get());
}

TEST(Registries, NodeSetSpecs) {
  const Topology topo = topologies().build("dual_clique(16)", 1);
  const ProblemFactory every = problems().build("local(every(4))", topo);
  const auto p = std::dynamic_pointer_cast<LocalBroadcastProblem>(every());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->broadcast_set(), (std::vector<int>{0, 4, 8, 12}));
}

TEST(Registries, CustomRegistrationRoundTrip) {
  auto& registry = algorithms();
  ASSERT_FALSE(registry.contains("test_only_algo"));
  registry.add("test_only_algo", "round robin under a custom name",
               [](const SpecArgs& args) {
                 args.expect_count(0, 0);
                 return round_robin_factory(RoundRobinConfig{true});
               });
  EXPECT_TRUE(registry.contains("test_only_algo"));
  const ProcessFactory factory = registry.build("test_only_algo");
  EXPECT_NE(factory, nullptr);
  // Duplicate registration is an error.
  EXPECT_THROW(registry.add("test_only_algo", "", nullptr), ScenarioError);
}

// ---------------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------------

TEST(Registries, UnknownNames) {
  const Topology topo = topologies().build("dual_clique(16)", 1);
  EXPECT_THROW(topologies().build("no_such_topology(8)", 1), ScenarioError);
  EXPECT_THROW(algorithms().build("no_such_algorithm"), ScenarioError);
  EXPECT_THROW(adversaries().build("no_such_adversary", topo), ScenarioError);
  EXPECT_THROW(problems().build("no_such_problem", topo), ScenarioError);
}

TEST(Registries, BadParameters) {
  const Topology topo = topologies().build("dual_clique(16)", 1);
  EXPECT_THROW(adversaries().build("iid", topo), ScenarioError);  // missing p
  EXPECT_THROW(adversaries().build("iid(abc)", topo), ScenarioError);
  EXPECT_THROW(adversaries().build("flicker(3)", topo), ScenarioError);
  EXPECT_THROW(algorithms().build("decay_global(bogus)"), ScenarioError);
  EXPECT_THROW(algorithms().build("round_robin(sideways)"), ScenarioError);
  EXPECT_THROW(topologies().build("dual_clique()", 1), ScenarioError);
  EXPECT_THROW(problems().build("local(no_such_set)", topo), ScenarioError);
  EXPECT_THROW(problems().build("global(no_such_mark)", topo), ScenarioError);
}

TEST(Registries, ConstructionAwareAdversaryRequiresItsTopology) {
  const Topology clique = topologies().build("dual_clique(16)", 1);
  EXPECT_THROW(adversaries().build("bracelet_presim", clique), ScenarioError);
  const Topology br = topologies().build("bracelet(128)", 1);
  EXPECT_NO_THROW(adversaries().build("bracelet_presim", br));
}

}  // namespace
}  // namespace dualcast::scenario
