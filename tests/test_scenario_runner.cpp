// ScenarioRunner: determinism (identical JSON rows for identical specs,
// single- vs multi-threaded), censoring, metric handling, smoke scaling,
// and the scenario catalog's acceptance surface.

#include <gtest/gtest.h>

#include <sstream>

#include "scenario/scenario.hpp"

namespace dualcast::scenario {
namespace {

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "test/small";
  spec.topology = "dual_clique({x})";
  spec.problem = "global(1)";
  spec.sweep = {16, 32};
  spec.trials = 4;
  spec.base_seed = 9;
  spec.max_rounds = "200*n";
  spec.columns = {
      {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
      {"robin+collider", "round_robin", "collider", ""},
  };
  return spec;
}

std::vector<std::string> rows_of(const ScenarioResult& result) {
  std::vector<std::string> rows;
  append_json_rows(result, rows);
  return rows;
}

TEST(ScenarioRunner, SameSpecSameSeedSameRows) {
  const ScenarioResult a = run_scenario(small_spec());
  const ScenarioResult b = run_scenario(small_spec());
  EXPECT_EQ(rows_of(a), rows_of(b));
}

TEST(ScenarioRunner, MultiThreadedMatchesSingleThreadedBitForBit) {
  RunOptions sequential;
  sequential.threads = 1;
  RunOptions pooled;
  pooled.threads = 4;
  const ScenarioResult a = run_scenario(small_spec(), sequential);
  const ScenarioResult b = run_scenario(small_spec(), pooled);
  const std::vector<std::string> rows_a = rows_of(a);
  EXPECT_EQ(rows_a, rows_of(b));
  ASSERT_FALSE(rows_a.empty());
  // Medians and raw trial values agree point by point, cell by cell.
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    ASSERT_EQ(a.points[p].cells.size(), b.points[p].cells.size());
    for (std::size_t c = 0; c < a.points[p].cells.size(); ++c) {
      EXPECT_EQ(a.points[p].cells[c].median, b.points[p].cells[c].median);
      EXPECT_EQ(a.points[p].cells[c].values, b.points[p].cells[c].values);
    }
  }
}

TEST(ScenarioRunner, SweepSchedulerBitIdenticalAcrossWorkerCounts) {
  // The sweep-point-level scheduler flattens (point × column × trial) into
  // one queue; every worker count must reproduce the sequential runner's
  // rows bit for bit.
  RunOptions sequential;
  const std::vector<std::string> reference =
      rows_of(run_scenario(small_spec(), sequential));
  ASSERT_FALSE(reference.empty());
  for (const int workers : {1, 2, 8}) {
    RunOptions swept;
    swept.sweep_threads = workers;
    EXPECT_EQ(rows_of(run_scenario(small_spec(), swept)), reference)
        << "sweep_threads=" << workers;
  }
  // The two pools compose: a sweep scheduler result also matches the
  // legacy per-cell trial pool.
  RunOptions trial_pool;
  trial_pool.threads = 4;
  EXPECT_EQ(rows_of(run_scenario(small_spec(), trial_pool)), reference);
}

TEST(ScenarioRunner, LeanAndFullHistoryProduceIdenticalResults) {
  RunOptions lean;
  lean.history = HistoryPolicy::lean;
  RunOptions full;
  full.history = HistoryPolicy::full;
  EXPECT_EQ(rows_of(run_scenario(small_spec(), lean)),
            rows_of(run_scenario(small_spec(), full)));
}

TEST(ScenarioCatalogTest, LeanHistoryMatchesFullOnEveryCatalogScenario) {
  // Measured results may never depend on history retention: for every
  // catalog scenario (smoke scale), a lean run — which each execution
  // honors or falls back from per its adversary's/problem's
  // needs_history() — must match a forced-full run row for row.
  for (const ScenarioSpec* spec : scenarios().all()) {
    RunOptions lean;
    lean.smoke = true;
    lean.history = HistoryPolicy::lean;
    RunOptions full;
    full.smoke = true;
    full.history = HistoryPolicy::full;
    EXPECT_EQ(rows_of(run_scenario(*spec, lean)),
              rows_of(run_scenario(*spec, full)))
        << spec->name;
  }
}

TEST(ScenarioCatalogTest, SweepSchedulerMatchesSequentialOnEveryCatalogScenario) {
  // The parallel sweep scheduler must be bit-identical to the sequential
  // runner on every catalog scenario, not just hand-picked specs.
  for (const ScenarioSpec* spec : scenarios().all()) {
    RunOptions sequential;
    sequential.smoke = true;
    RunOptions swept;
    swept.smoke = true;
    swept.sweep_threads = 8;
    EXPECT_EQ(rows_of(run_scenario(*spec, swept)),
              rows_of(run_scenario(*spec, sequential)))
        << spec->name;
  }
}

TEST(ScenarioCatalogTest, KernelEngineMatchesScalarOnEveryCatalogScenario) {
  // The batch-kernel engine must reproduce the scalar engine's rows byte
  // for byte on every catalog scenario — the bit-identical contract of the
  // kernel ports (and of the scalar-adapter fallback behind them).
  for (const ScenarioSpec* spec : scenarios().all()) {
    RunOptions scalar;
    scalar.smoke = true;
    scalar.engine = EnginePath::scalar;
    RunOptions kernel;
    kernel.smoke = true;
    kernel.engine = EnginePath::kernel;
    EXPECT_EQ(rows_of(run_scenario(*spec, kernel)),
              rows_of(run_scenario(*spec, scalar)))
        << spec->name;
  }
}

TEST(ScenarioRunner, ScenarioLevelSchedulerBitIdentical) {
  // run_scenarios flattens (scenario × point × column × trial) into one
  // queue; any worker count must reproduce the per-scenario sequential
  // rows, in selection order.
  ScenarioSpec a = small_spec();
  ScenarioSpec b = small_spec();
  b.name = "test/small-2";
  b.base_seed = 77;
  ScenarioSpec c = small_spec();
  c.name = "test/small-3";
  c.topology = "line_overlay({x},3)";
  const std::vector<const ScenarioSpec*> selection{&a, &b, &c};

  std::vector<std::string> reference;
  for (const ScenarioSpec* spec : selection) {
    const ScenarioResult result = run_scenario(*spec);
    append_json_rows(result, reference);
  }
  ASSERT_FALSE(reference.empty());
  for (const int workers : {2, 8}) {
    RunOptions options;
    options.sweep_threads = workers;
    std::vector<std::string> rows;
    for (const ScenarioResult& result : run_scenarios(selection, options)) {
      append_json_rows(result, rows);
    }
    EXPECT_EQ(rows, reference) << "sweep_threads=" << workers;
  }
}

TEST(ScenarioRunner, DifferentSeedsChangeValues) {
  ScenarioSpec spec = small_spec();
  const ScenarioResult a = run_scenario(spec);
  spec.base_seed += 1000;
  const ScenarioResult b = run_scenario(spec);
  EXPECT_NE(rows_of(a), rows_of(b));
}

TEST(ScenarioRunner, CensorsAtRoundBudget) {
  ScenarioSpec spec = small_spec();
  spec.sweep = {32};
  spec.max_rounds = "3";  // nothing solves a 32-node clique in 3 rounds
  const ScenarioResult result = run_scenario(spec);
  for (const CellResult& cell : result.points[0].cells) {
    EXPECT_EQ(cell.failures, spec.trials);
    for (const double v : cell.values) EXPECT_EQ(v, 3.0);
  }
}

TEST(ScenarioRunner, FirstReceiveMetric) {
  ScenarioSpec spec;
  spec.name = "test/first-receive";
  spec.topology = "bracelet(128)";
  spec.problem = "local(heads_a)";
  spec.metric = "first_receive(clasp_b)";
  spec.sweep = {128};
  spec.trials = 3;
  spec.max_rounds = "200*band_len";
  spec.columns = {{"benign", "decay_local", "none", ""}};
  const ScenarioResult result = run_scenario(spec);
  const CellResult& cell = result.points[0].cells[0];
  EXPECT_EQ(cell.trials, 3);
  for (const double v : cell.values) EXPECT_GE(v, 1.0);
  EXPECT_EQ(result.points[0].marks.at("band_len"), 8);
}

TEST(ScenarioRunner, TrialsOverrideAndSmoke) {
  ScenarioSpec spec = small_spec();
  spec.smoke_x = 16;
  RunOptions options;
  options.trials_override = 2;
  const ScenarioResult overridden = run_scenario(spec, options);
  EXPECT_EQ(overridden.points[0].cells[0].trials, 2);

  RunOptions smoke;
  smoke.smoke = true;
  const ScenarioResult tiny = run_scenario(spec, smoke);
  ASSERT_EQ(tiny.points.size(), 1u);
  EXPECT_EQ(tiny.points[0].n, 16);
  EXPECT_EQ(tiny.points[0].cells[0].trials, 1);
}

TEST(ScenarioRunner, SpecErrors) {
  ScenarioSpec spec = small_spec();
  spec.sweep.clear();
  EXPECT_THROW(run_scenario(spec), ScenarioError);

  spec = small_spec();
  spec.columns.clear();
  EXPECT_THROW(run_scenario(spec), ScenarioError);

  spec = small_spec();
  spec.metric = "no_such_metric";
  EXPECT_THROW(run_scenario(spec), ScenarioError);

  spec = small_spec();
  spec.max_rounds = "300*bogus_var";
  EXPECT_THROW(run_scenario(spec), ScenarioError);
}

TEST(ScenarioRunner, PrintsTableAndNote) {
  ScenarioSpec spec = small_spec();
  spec.title = "printable";
  spec.note = "the-note-text";
  std::ostringstream os;
  RunOptions options;
  options.out = &os;
  run_scenario(spec, options);
  const std::string text = os.str();
  EXPECT_NE(text.find("printable"), std::string::npos);
  EXPECT_NE(text.find("decay+iid"), std::string::npos);
  EXPECT_NE(text.find("the-note-text"), std::string::npos);
}

TEST(ScenarioCatalogTest, BuiltinsCoverFigureOneAndMore) {
  // The acceptance bar: every former bench behavior reachable by name,
  // with at least 14 registered scenarios.
  EXPECT_GE(scenarios().all().size(), 14u);
  for (const char* name :
       {"fig1/offline-global", "fig1/offline-local", "fig1/online-global",
        "fig1/online-local", "fig1/oblivious-global-clique",
        "fig1/oblivious-global-line", "fig1/oblivious-local-general",
        "fig1/oblivious-local-geo-n", "fig1/oblivious-local-geo-delta",
        "fig1/static-global-clique", "fig1/static-global-line",
        "fig1/static-local-n", "fig1/static-local-delta",
        "ablation/iid-vs-adversarial", "ablation/permutation",
        "ablation/seeds", "ext/gossip-k", "ext/gossip-n"}) {
    EXPECT_TRUE(scenarios().contains(name)) << name;
  }
  EXPECT_THROW(scenarios().get("fig1/no-such-cell"), ScenarioError);
  EXPECT_GE(scenarios().match("fig1/").size(), 9u);
  EXPECT_TRUE(scenarios().match("zzz/none").empty());
}

TEST(ScenarioCatalogTest, EverySpecParsesAgainstItsRegistries) {
  // Static validation of the whole catalog: topology, algorithm, adversary,
  // and problem specs all resolve at the smoke sweep point.
  for (const ScenarioSpec* spec : scenarios().all()) {
    const double x =
        spec->smoke_x != 0.0 ? spec->smoke_x : spec->sweep.front();
    const Topology topo = topologies().build(
        substitute_x(spec->topology, x), spec->topology_seed);
    std::map<std::string, double> vars{{"x", x},
                                       {"n", static_cast<double>(topo.n())}};
    for (const auto& [name, value] : topo.marks) {
      vars[name] = static_cast<double>(value);
    }
    EXPECT_GE(resolve_rounds(spec->max_rounds, vars), 1) << spec->name;
    for (const ScenarioColumn& column : spec->columns) {
      EXPECT_NO_THROW({
        algorithms().build(substitute_x(column.algorithm, x));
        adversaries().build(substitute_x(column.adversary, x), topo);
        problems().build(
            substitute_x(
                column.problem.empty() ? spec->problem : column.problem, x),
            topo);
      }) << spec->name << " / " << column.label;
    }
  }
}

}  // namespace
}  // namespace dualcast::scenario
