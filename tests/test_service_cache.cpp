// Result cache: a repeated identical request is served entirely from the
// cache with zero trial recomputation (proved by the global trial
// counter), cache hits are byte-identical to live recomputes, and the
// cache key is sensitive to every input that selects sample paths.

#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/trials.hpp"
#include "service/service.hpp"

namespace dualcast::service {
namespace {

namespace fs = std::filesystem;
using scenario::RunOptions;
using scenario::ScenarioSpec;

const ScenarioSpec& mini_scenario() {
  static const std::string name = "svc-test/cache-mini";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec;
    spec.name = name;
    spec.title = "service cache mini";
    spec.topology = "dual_clique({x})";
    spec.problem = "global(1)";
    spec.sweep = {8, 12};
    spec.trials = 3;
    spec.base_seed = 33;
    spec.max_rounds = "200*n";
    spec.columns = {
        {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
        {"robin+collider", "round_robin", "collider", ""},
    };
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("dualcast_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

TEST(ServiceCache, RepeatRequestServedFromCacheWithZeroTrials) {
  const std::string cache_dir = fresh_dir("cache_repeat");
  ServeOptions options;
  options.cache_dir = cache_dir;
  options.workers = 2;
  options.shard_tasks = 4;

  // First serve computes (sharded) and populates the cache.
  options.job_dir = fresh_dir("cache_repeat_job1");
  const ServeSummary first = serve({&mini_scenario()}, {}, options);
  EXPECT_EQ(first.computed, 1);
  EXPECT_EQ(first.from_cache, 0);
  EXPECT_EQ(first.trials_run, 12u);
  ASSERT_EQ(first.rows.size(), 4u);

  // The identical request again: 100% cache, zero trials executed — the
  // trial counter is the proof there was no silent recomputation.
  options.job_dir = fresh_dir("cache_repeat_job2");
  const std::uint64_t trials_before = trials_executed();
  const ServeSummary second = serve({&mini_scenario()}, {}, options);
  EXPECT_EQ(second.from_cache, 1);
  EXPECT_EQ(second.computed, 0);
  EXPECT_EQ(second.trials_run, 0u);
  EXPECT_EQ(trials_executed(), trials_before);
  EXPECT_EQ(second.rows, first.rows);
  EXPECT_TRUE(second.job_dir.empty());  // no job was ever created
}

TEST(ServiceCache, VerifyCacheRecomputesAndMatches) {
  const std::string cache_dir = fresh_dir("cache_verify");
  ServeOptions options;
  options.cache_dir = cache_dir;
  options.job_dir = fresh_dir("cache_verify_job1");
  const ServeSummary first = serve({&mini_scenario()}, {}, options);
  ASSERT_EQ(first.computed, 1);

  // --verify-cache recomputes the cached scenario live and throws on any
  // row drift; a clean return plus equal rows is the verifiability check.
  options.verify_cache = true;
  options.job_dir = fresh_dir("cache_verify_job2");
  const ServeSummary verified = serve({&mini_scenario()}, {}, options);
  EXPECT_EQ(verified.computed, 1);
  EXPECT_GT(verified.trials_run, 0u);
  EXPECT_EQ(verified.rows, first.rows);
}

TEST(ServiceCache, CachedRowsMatchDirectRunnerRows) {
  const std::string cache_dir = fresh_dir("cache_vs_runner");
  ServeOptions options;
  options.cache_dir = cache_dir;
  options.job_dir = fresh_dir("cache_vs_runner_job");
  serve({&mini_scenario()}, {}, options);

  std::vector<std::string> reference;
  for (const scenario::ScenarioResult& result :
       scenario::run_scenarios({&mini_scenario()}, {})) {
    scenario::append_json_rows(result, reference);
  }
  const ResultCache cache(cache_dir);
  const auto hit = cache.lookup(result_cache_key(
      scenario::apply_options(mini_scenario(), {}), {}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, reference);
}

TEST(ServiceCache, KeyIsSensitiveToEveryResultSelectingInput) {
  const ScenarioSpec applied =
      scenario::apply_options(mini_scenario(), {});
  const std::uint64_t base = result_cache_key(applied, {});

  RunOptions scalar;
  scalar.engine = scenario::EnginePath::scalar;
  EXPECT_NE(result_cache_key(applied, scalar), base);

  RunOptions word;
  word.rng = RngMode::word;
  EXPECT_NE(result_cache_key(applied, word), base);

  RunOptions fewer;
  fewer.trials_override = 2;
  EXPECT_NE(
      result_cache_key(scenario::apply_options(mini_scenario(), fewer),
                       fewer),
      base);

  ScenarioSpec reseeded = mini_scenario();
  reseeded.base_seed += 1;
  EXPECT_NE(result_cache_key(scenario::apply_options(reseeded, {}), {}),
            base);

  // Inputs that can NOT change results share the key: thread counts and
  // history retention are execution details, not identity.
  RunOptions threaded;
  threaded.threads = 8;
  threaded.sweep_threads = 4;
  threaded.history = HistoryPolicy::full;
  EXPECT_EQ(result_cache_key(applied, threaded), base);
}

}  // namespace
}  // namespace dualcast::service
