// Result cache: a repeated identical request is served entirely from the
// cache with zero trial recomputation (proved by the global trial
// counter), cache hits are byte-identical to live recomputes, the cache
// key is sensitive to every input that selects sample paths, and a byte
// budget evicts least-recently-used entries (with lookups refreshing
// recency) while survivors keep hitting with zero recompute.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/trials.hpp"
#include "service/service.hpp"
#include "util/clock.hpp"

namespace dualcast::service {
namespace {

namespace fs = std::filesystem;
using scenario::RunOptions;
using scenario::ScenarioSpec;

const ScenarioSpec& mini_scenario() {
  static const std::string name = "svc-test/cache-mini";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec;
    spec.name = name;
    spec.title = "service cache mini";
    spec.topology = "dual_clique({x})";
    spec.problem = "global(1)";
    spec.sweep = {8, 12};
    spec.trials = 3;
    spec.base_seed = 33;
    spec.max_rounds = "200*n";
    spec.columns = {
        {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
        {"robin+collider", "round_robin", "collider", ""},
    };
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

// A second scenario, distinct only in seed — two different cache entries
// for the eviction tests.
const ScenarioSpec& mini_scenario_b() {
  static const std::string name = "svc-test/cache-mini-b";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec = mini_scenario();
    spec.name = name;
    spec.title = "service cache mini b";
    spec.base_seed = 34;
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("dualcast_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

TEST(ServiceCache, RepeatRequestServedFromCacheWithZeroTrials) {
  const std::string cache_dir = fresh_dir("cache_repeat");
  ServeOptions options;
  options.cache_dir = cache_dir;
  options.workers = 2;
  options.shard_tasks = 4;

  // First serve computes (sharded) and populates the cache.
  options.job_dir = fresh_dir("cache_repeat_job1");
  const ServeSummary first = serve({&mini_scenario()}, {}, options);
  EXPECT_EQ(first.computed, 1);
  EXPECT_EQ(first.from_cache, 0);
  EXPECT_EQ(first.trials_run, 12u);
  ASSERT_EQ(first.rows.size(), 4u);

  // The identical request again: 100% cache, zero trials executed — the
  // trial counter is the proof there was no silent recomputation.
  options.job_dir = fresh_dir("cache_repeat_job2");
  const std::uint64_t trials_before = trials_executed();
  const ServeSummary second = serve({&mini_scenario()}, {}, options);
  EXPECT_EQ(second.from_cache, 1);
  EXPECT_EQ(second.computed, 0);
  EXPECT_EQ(second.trials_run, 0u);
  EXPECT_EQ(trials_executed(), trials_before);
  EXPECT_EQ(second.rows, first.rows);
  EXPECT_TRUE(second.job_dir.empty());  // no job was ever created
}

TEST(ServiceCache, VerifyCacheRecomputesAndMatches) {
  const std::string cache_dir = fresh_dir("cache_verify");
  ServeOptions options;
  options.cache_dir = cache_dir;
  options.job_dir = fresh_dir("cache_verify_job1");
  const ServeSummary first = serve({&mini_scenario()}, {}, options);
  ASSERT_EQ(first.computed, 1);

  // --verify-cache recomputes the cached scenario live and throws on any
  // row drift; a clean return plus equal rows is the verifiability check.
  options.verify_cache = true;
  options.job_dir = fresh_dir("cache_verify_job2");
  const ServeSummary verified = serve({&mini_scenario()}, {}, options);
  EXPECT_EQ(verified.computed, 1);
  EXPECT_GT(verified.trials_run, 0u);
  EXPECT_EQ(verified.rows, first.rows);
}

TEST(ServiceCache, CachedRowsMatchDirectRunnerRows) {
  const std::string cache_dir = fresh_dir("cache_vs_runner");
  ServeOptions options;
  options.cache_dir = cache_dir;
  options.job_dir = fresh_dir("cache_vs_runner_job");
  serve({&mini_scenario()}, {}, options);

  std::vector<std::string> reference;
  for (const scenario::ScenarioResult& result :
       scenario::run_scenarios({&mini_scenario()}, {})) {
    scenario::append_json_rows(result, reference);
  }
  ResultCache cache(cache_dir);
  const auto hit = cache.lookup(result_cache_key(
      scenario::apply_options(mini_scenario(), {}), {}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, reference);
}

TEST(ServiceCache, KeyIsSensitiveToEveryResultSelectingInput) {
  const ScenarioSpec applied =
      scenario::apply_options(mini_scenario(), {});
  const std::uint64_t base = result_cache_key(applied, {});

  RunOptions scalar;
  scalar.engine = scenario::EnginePath::scalar;
  EXPECT_NE(result_cache_key(applied, scalar), base);

  RunOptions word;
  word.rng = RngMode::word;
  EXPECT_NE(result_cache_key(applied, word), base);

  RunOptions fewer;
  fewer.trials_override = 2;
  EXPECT_NE(
      result_cache_key(scenario::apply_options(mini_scenario(), fewer),
                       fewer),
      base);

  ScenarioSpec reseeded = mini_scenario();
  reseeded.base_seed += 1;
  EXPECT_NE(result_cache_key(scenario::apply_options(reseeded, {}), {}),
            base);

  // Inputs that can NOT change results share the key: thread counts and
  // history retention are execution details, not identity.
  RunOptions threaded;
  threaded.threads = 8;
  threaded.sweep_threads = 4;
  threaded.history = HistoryPolicy::full;
  EXPECT_EQ(result_cache_key(applied, threaded), base);
}

TEST(ServiceCache, LruEvictionStaysUnderBudgetAndLookupRefreshes) {
  const std::string dir = fresh_dir("cache_lru");
  util::FakeClock clock(100);
  // Each entry is 41 bytes (40 of rows + 1 of sidecar); a 100-byte budget
  // holds two entries but not three.
  const std::vector<std::string> rows{std::string(39, 'x')};
  ResultCache cache(dir, /*max_bytes=*/100, nullptr, &clock);
  cache.store(1, rows, "d");
  clock.advance(10);
  cache.store(2, rows, "d");
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_LE(cache.total_bytes(), 100u);

  // A lookup is a *use*: key 1 becomes the most recent, so the next
  // eviction must take key 2 even though key 1 was stored first.
  clock.advance(10);
  EXPECT_TRUE(cache.lookup(1).has_value());
  clock.advance(10);
  cache.store(3, rows, "d");
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_LE(cache.total_bytes(), 100u);
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());

  // Recency is durable: a reopened cache sees the same two entries.
  ResultCache reopened(dir, 100, nullptr, &clock);
  EXPECT_EQ(reopened.entry_count(), 2u);
  EXPECT_TRUE(reopened.lookup(1).has_value());
  EXPECT_TRUE(reopened.lookup(3).has_value());

  // A budget too small for even one entry still keeps the newest: the
  // just-stored entry (and the last survivor) are never evicted, so a
  // hostile budget degrades to "cache of one", not an empty cache.
  ResultCache tiny(fresh_dir("cache_tiny"), /*max_bytes=*/1, nullptr,
                   &clock);
  tiny.store(7, rows, "d");
  EXPECT_EQ(tiny.entry_count(), 1u);
  tiny.store(8, rows, "d");
  EXPECT_EQ(tiny.entry_count(), 1u);
  EXPECT_FALSE(tiny.lookup(7).has_value());
  EXPECT_TRUE(tiny.lookup(8).has_value());
}

TEST(ServiceCache, OrphanTempFilesAreSweptOnOpen) {
  const std::string dir = fresh_dir("cache_orphans");
  fs::create_directories(dir);
  const fs::path orphan_rows =
      fs::path(dir) / "0000000000000001.rows.tmp.999.0";
  const fs::path orphan_index = fs::path(dir) / "index.tmp.999.1";
  std::ofstream(orphan_rows) << "half-written";
  std::ofstream(orphan_index) << "half-written";
  ASSERT_TRUE(fs::exists(orphan_rows));

  ResultCache cache(dir);
  EXPECT_FALSE(fs::exists(orphan_rows));
  EXPECT_FALSE(fs::exists(orphan_index));
  EXPECT_EQ(cache.entry_count(), 0u);  // debris never becomes an entry
}

TEST(ServiceCache, EvictedScenarioRecomputesWhileSurvivorStillHits) {
  // Pin the catalog before any keys are computed: both scenarios must be
  // registered up front, since the key covers the whole catalog hash.
  const ScenarioSpec& a = mini_scenario();
  const ScenarioSpec& b = mini_scenario_b();
  const std::string cache_dir = fresh_dir("cache_evict_e2e");
  ServeOptions options;
  options.cache_dir = cache_dir;
  options.cache_max_bytes = 1;  // room for exactly one surviving entry

  // Serve A, then B: storing B evicts A.
  options.job_dir = fresh_dir("cache_evict_job_a");
  const ServeSummary first_a = serve({&a}, {}, options);
  EXPECT_EQ(first_a.computed, 1);
  options.job_dir = fresh_dir("cache_evict_job_b");
  EXPECT_EQ(serve({&b}, {}, options).computed, 1);

  // The survivor (B) still hits with zero recompute...
  const std::uint64_t trials_before = trials_executed();
  options.job_dir = fresh_dir("cache_evict_job_b2");
  const ServeSummary again_b = serve({&b}, {}, options);
  EXPECT_EQ(again_b.from_cache, 1);
  EXPECT_EQ(trials_executed(), trials_before);

  // ...while the evicted scenario (A) transparently recomputes, and the
  // recompute is byte-identical to what the cache once held.
  options.job_dir = fresh_dir("cache_evict_job_a2");
  const ServeSummary again_a = serve({&a}, {}, options);
  EXPECT_EQ(again_a.from_cache, 0);
  EXPECT_EQ(again_a.computed, 1);
  EXPECT_GT(trials_executed(), trials_before);
  EXPECT_EQ(again_a.rows, first_a.rows);
}

}  // namespace
}  // namespace dualcast::service
