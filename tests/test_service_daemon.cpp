// Daemon mode: a job directory dropped into the watched dir is picked up,
// worked to completion, merged into the result cache (so a later serve is
// zero-recompute), and left with no held leases; the cooperative stop
// flag exits cleanly mid-run; an unopenable (read-only) cache degrades to
// compute-without-cache with a single warning. Plus the CLI contract:
// merge/status against a broken job dir exit nonzero.

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "analysis/trials.hpp"
#include "service/daemon.hpp"
#include "service/service.hpp"
#include "service/service_cli.hpp"

namespace dualcast::service {
namespace {

namespace fs = std::filesystem;
using scenario::ScenarioSpec;

const ScenarioSpec& mini_scenario() {
  static const std::string name = "svc-test/daemon-mini";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec;
    spec.name = name;
    spec.title = "service daemon mini";
    spec.topology = "dual_clique({x})";
    spec.problem = "global(1)";
    spec.sweep = {8, 12};
    spec.trials = 3;
    spec.base_seed = 55;
    spec.max_rounds = "200*n";
    spec.columns = {
        {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
        {"robin+collider", "round_robin", "collider", ""},
    };
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("dualcast_daemon_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Drops a job for the mini scenario into `jobs_dir`/job1.
std::string drop_job(const std::string& jobs_dir) {
  const JobSpec job =
      make_job_spec({&mini_scenario()}, scenario::RunOptions{},
                    /*shard_tasks=*/3, /*lease_ttl_seconds=*/60);
  const std::string dir = jobs_dir + "/job1";
  JobStore::create_or_attach(dir, job);
  return dir;
}

void expect_no_leases(const std::string& job_dir) {
  const JobStore store = JobStore::open(job_dir);
  for (const ShardState& shard : store.scan()) {
    EXPECT_FALSE(shard.leased)
        << "shard " << shard.index << " still leased by "
        << shard.lease_owner;
  }
}

TEST(ServiceDaemon, DrainsDroppedJobIntoCacheThenServeIsZeroRecompute) {
  const std::string jobs_dir = fresh_dir("drain_jobs");
  const std::string cache_dir = fresh_dir("drain_cache");
  const std::string job_dir = drop_job(jobs_dir);

  std::ostringstream log;
  DaemonOptions options;
  options.jobs_dir = jobs_dir;
  options.cache_dir = cache_dir;
  options.owner = "daemon-test";
  options.max_cycles = 3;
  options.poll_initial_ms = 1;
  options.poll_max_ms = 2;
  options.log = &log;
  const DaemonReport report = run_daemon(options);
  EXPECT_EQ(report.jobs_seen, 1);
  EXPECT_EQ(report.jobs_completed, 1);
  EXPECT_EQ(report.tasks_executed, 12);
  EXPECT_FALSE(report.stopped);
  expect_no_leases(job_dir);
  EXPECT_NE(log.str().find("picked up job"), std::string::npos);
  EXPECT_NE(log.str().find("completed job"), std::string::npos);

  // The daemon populated the cache: a serve of the same scenario must be
  // pure cache — zero trials executed.
  const std::uint64_t trials_before = trials_executed();
  ServeOptions serve_options;
  serve_options.cache_dir = cache_dir;
  serve_options.job_dir = fresh_dir("drain_serve_job");
  const ServeSummary summary =
      serve({&mini_scenario()}, {}, serve_options);
  EXPECT_EQ(summary.from_cache, 1);
  EXPECT_EQ(summary.computed, 0);
  EXPECT_EQ(summary.trials_run, 0u);
  EXPECT_EQ(trials_executed(), trials_before);
}

TEST(ServiceDaemon, StopFlagExitsCleanlyWithLeasesReleased) {
  const std::string jobs_dir = fresh_dir("stop_jobs");
  const std::string job_dir = drop_job(jobs_dir);

  std::atomic<bool> stop{false};
  DaemonOptions options;
  options.jobs_dir = jobs_dir;
  options.cache_dir.clear();
  options.owner = "daemon-stop";
  options.poll_initial_ms = 1;
  options.poll_max_ms = 5;
  options.stop = &stop;
  DaemonReport report;
  std::thread daemon([&] { report = run_daemon(options); });
  // Let it get into the job, then pull the plug. (If the job finishes
  // before the flag lands, the assertions below still hold — the daemon
  // idles until stopped and leaves the job complete and lease-free.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  daemon.join();
  EXPECT_TRUE(report.stopped);
  expect_no_leases(job_dir);

  // Whatever the daemon recorded before stopping is durable; a plain
  // worker finishes the remainder and the job merges clean.
  JobStore store = JobStore::open(job_dir);
  const JobRuntime runtime(store);
  WorkerOptions finish;
  finish.owner = "finisher";
  run_worker(store, runtime, finish);
  JobRuntime merge_runtime(store);
  EXPECT_EQ(merge_job(store, merge_runtime, nullptr).size(), 4u);
}

TEST(ServiceDaemon, ReadOnlyCacheDegradesToComputeWithoutCache) {
  const std::string jobs_dir = fresh_dir("rocache_jobs");
  const std::string job_dir = drop_job(jobs_dir);

  // Every op touching the cache directory fails EROFS, persistently —
  // a read-only mount. Job-store ops pass through untouched.
  util::FaultyFs faulty(util::real_fs());
  util::InjectedFault fault;
  fault.kind = util::InjectedFault::Kind::error;
  fault.err = EROFS;
  fault.path_substr = "rocache_cachedir";
  fault.sticky = true;
  faulty.inject(fault);
  StoreEnv env;
  env.fs = &faulty;

  std::ostringstream log;
  DaemonOptions options;
  options.jobs_dir = jobs_dir;
  options.cache_dir = fresh_dir("rocache_cachedir");
  options.owner = "daemon-ro";
  options.max_cycles = 3;
  options.poll_initial_ms = 1;
  options.poll_max_ms = 2;
  options.log = &log;
  const DaemonReport report = run_daemon(options, env);
  EXPECT_EQ(report.jobs_completed, 1);
  EXPECT_EQ(report.tasks_executed, 12);
  expect_no_leases(job_dir);

  // Exactly one warning about the cache; the job still completed.
  const std::string text = log.str();
  const std::size_t first = text.find("cannot open result cache");
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find("cannot open result cache", first + 1),
            std::string::npos)
      << "cache warning repeated: " << text;
  JobStore store = JobStore::open(job_dir);
  JobRuntime merge_runtime(store);
  EXPECT_EQ(merge_job(store, merge_runtime, nullptr).size(), 4u);
}

TEST(ServiceCliContract, MergeAndStatusExitNonzeroOnBrokenJobDirs) {
  // status against nothing: nonzero with a diagnostic (not a crash).
  {
    const std::string dir = fresh_dir("cli_absent") + "/nope";
    std::string arg_status = "status";
    std::string arg_flag = "--job-dir";
    char* argv[] = {const_cast<char*>("bench"), arg_status.data(),
                    arg_flag.data(), const_cast<char*>(dir.c_str())};
    EXPECT_EQ(service_main(4, argv), 1);
  }
  // merge against a job with a mangled meta field: nonzero.
  {
    const std::string dir = fresh_dir("cli_badmeta");
    std::ofstream(fs::path(dir) / "job.meta")
        << "dualcast-job v1\nkey 0000000000000001\n"
           "catalog 0000000000000002\nshard_tasks banana\n"
           "scenario svc-test/daemon-mini\nend\n";
    std::string arg_merge = "merge";
    std::string arg_flag = "--job-dir";
    char* argv[] = {const_cast<char*>("bench"), arg_merge.data(),
                    arg_flag.data(), const_cast<char*>(dir.c_str())};
    EXPECT_EQ(service_main(4, argv), 1);
  }
  // merge of an incomplete (but valid) job: nonzero, not rows.
  {
    const std::string jobs_dir = fresh_dir("cli_incomplete");
    const std::string job_dir = drop_job(jobs_dir);
    std::string arg_merge = "merge";
    std::string arg_flag = "--job-dir";
    std::string arg_nocache = "--no-cache";
    char* argv[] = {const_cast<char*>("bench"), arg_merge.data(),
                    arg_flag.data(), const_cast<char*>(job_dir.c_str()),
                    arg_nocache.data()};
    EXPECT_EQ(service_main(5, argv), 1);
  }
}

}  // namespace
}  // namespace dualcast::service
