// The fault matrix: derive injection points from a fault-free run's op
// trace, then for each point kill/corrupt/fail a worker at exactly that
// filesystem operation, resume with a clean worker, and require the
// merged JSON byte-identical to the uninterrupted reference. Also the
// end-to-end corruption drill: a bit-rotted shard log is detected (merge
// refuses), quarantined, recomputed from the watermark, and the final
// merge is again byte-identical.

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include "analysis/trials.hpp"
#include "service/service.hpp"

namespace dualcast::service {
namespace {

namespace fs = std::filesystem;
using scenario::ScenarioError;
using scenario::ScenarioSpec;
using util::FakeClock;
using util::FaultyFs;
using util::InjectedFault;

const ScenarioSpec& mini_scenario() {
  static const std::string name = "svc-test/fault-mini";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec;
    spec.name = name;
    spec.title = "service fault mini";
    spec.topology = "dual_clique({x})";
    spec.problem = "global(1)";
    spec.sweep = {8, 12};
    spec.trials = 3;
    spec.base_seed = 44;
    spec.max_rounds = "200*n";
    spec.columns = {
        {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
        {"robin+collider", "round_robin", "collider", ""},
    };
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("dualcast_fault_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

std::vector<std::string> reference_rows() {
  static const std::vector<std::string> rows = [] {
    std::vector<std::string> out;
    for (const scenario::ScenarioResult& result :
         scenario::run_scenarios({&mini_scenario()}, {})) {
      scenario::append_json_rows(result, out);
    }
    return out;
  }();
  return rows;
}

JobSpec mini_job() {
  // lease_ttl 0: a dead worker's lease is instantly stealable, so the
  // resume phase never has to wait out (or fake) a TTL.
  return make_job_spec({&mini_scenario()}, scenario::RunOptions{},
                       /*shard_tasks=*/3, /*lease_ttl_seconds=*/0);
}

/// One full create+work pass through a FaultyFs under a frozen clock.
/// Returns what stopped the worker: "" = ran to completion, otherwise the
/// fault's description. The frozen FakeClock keeps the lease heartbeat
/// quiescent, so the op sequence is single-threaded and identical across
/// replays — the property that makes a global op index a *coordinate*.
std::string faulted_pass(const std::string& dir, FaultyFs& faulty) {
  FakeClock clock(1000);
  StoreEnv env;
  env.fs = &faulty;
  env.clock = &clock;
  JobStore store = JobStore::create_or_attach(dir, mini_job(), env);
  const JobRuntime runtime(store);
  WorkerOptions options;
  options.owner = "victim";
  options.io_retries = 2;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 2;
  try {
    run_worker(store, runtime, options);
    return "";
  } catch (const util::InjectedCrash& crash) {
    return crash.what();
  } catch (const util::IoError& error) {
    return error.what();
  }
}

/// Clean resume + merge: a fresh worker (real fs, real clock) steals the
/// stale leases, quarantines anything corrupt, completes the job, and the
/// merge must reproduce the reference bytes.
void resume_and_check(const std::string& dir, const std::string& context) {
  JobStore store = JobStore::open(dir);
  const JobRuntime runtime(store);
  WorkerOptions options;
  options.owner = "recoverer";
  run_worker(store, runtime, options);
  JobRuntime merge_runtime(store);
  EXPECT_EQ(merge_job(store, merge_runtime, nullptr), reference_rows())
      << "divergent merge after " << context;
}

TEST(ServiceFaultMatrix, EveryInjectionPointResumesByteIdentical) {
  ASSERT_EQ(reference_rows().size(), 4u);

  // Dry run: no faults, record the op trace and where job creation ends.
  const std::string dry = fresh_dir("dry");
  FaultyFs tracer(util::real_fs());
  int creation_ops = 0;
  {
    FakeClock clock(1000);
    StoreEnv env;
    env.fs = &tracer;
    env.clock = &clock;
    JobStore store = JobStore::create_or_attach(dry, mini_job(), env);
    creation_ops = tracer.ops();
    const JobRuntime runtime(store);
    WorkerOptions options;
    options.owner = "victim";
    run_worker(store, runtime, options);
  }
  resume_and_check(dry, "the fault-free dry run");
  const auto trace = tracer.trace();

  // Choose injection points: for each op kind that appears on the
  // worker's shard/lease paths, take the first, middle, and last
  // occurrence — spread across the run's lifetime without hand-picked
  // magic indices that would rot when the op sequence evolves.
  std::map<std::string, std::vector<int>> by_op;
  for (int i = creation_ops; i < static_cast<int>(trace.size()); ++i) {
    const auto& [op, path] = trace[i];
    if (path.find("shards/") == std::string::npos &&
        path.find("leases/") == std::string::npos) {
      continue;
    }
    by_op[op].push_back(i);
  }
  std::vector<int> points;
  for (const auto& [op, indices] : by_op) {
    std::set<int> chosen{indices.front(),
                         indices[indices.size() / 2],
                         indices.back()};
    points.insert(points.end(), chosen.begin(), chosen.end());
  }
  // The acceptance floor: a real matrix, not a token sample. Expect the
  // append/fsync/write/link/unlink/rename families all present.
  ASSERT_GE(points.size(), 10u) << "op trace too small for a fault matrix";
  ASSERT_GE(by_op.size(), 5u);
  ASSERT_TRUE(by_op.count("append") == 1);
  ASSERT_TRUE(by_op.count("fsync") == 1);
  ASSERT_TRUE(by_op.count("link") == 1);
  ASSERT_TRUE(by_op.count("rename") == 1);

  int variant = 0;
  for (const int at : points) {
    const auto& [op, path] = trace[at];
    // Rotate fault kinds so the matrix covers kills, torn appends, and
    // error paths (one-shot EIO is absorbed by the retry loop — the run
    // then completes; sticky ENOSPC exhausts it — the run dies).
    InjectedFault fault;
    fault.at = at;
    const int flavor = variant++ % 3;
    std::string label;
    if (flavor == 1 && op == "append") {
      fault.kind = InjectedFault::Kind::torn;
      fault.keep_bytes = 5;  // mid-record: a torn tail, not corruption
      label = "torn";
    } else if (flavor == 2) {
      fault.kind = InjectedFault::Kind::error;
      fault.err = variant % 2 == 0 ? EIO : ENOSPC;
      fault.sticky = variant % 4 == 0;
      label = fault.sticky ? "sticky-error" : "error";
    } else {
      fault.kind = InjectedFault::Kind::crash;
      label = "crash";
    }

    const std::string context =
        label + " at op " + std::to_string(at) + " (" + op + " " + path +
        ")";
    SCOPED_TRACE(context);
    const std::string dir =
        fresh_dir("pt" + std::to_string(at) + "_" + label);
    FaultyFs faulty(util::real_fs());
    faulty.inject(fault);
    const std::string died = faulted_pass(dir, faulty);
    EXPECT_EQ(faulty.faults_fired() > 0, true);
    if (fault.kind != InjectedFault::Kind::error || fault.sticky) {
      EXPECT_FALSE(died.empty()) << "fault did not stop the worker";
    }
    resume_and_check(dir, context);
  }
}

TEST(ServiceFaultMatrix, CorruptShardIsNeverMergedAndRecomputesIdentical) {
  // Complete a job cleanly...
  const std::string dir = fresh_dir("bitrot");
  JobStore store = JobStore::create_or_attach(dir, mini_job());
  const JobRuntime runtime(store);
  WorkerOptions options;
  options.owner = "original";
  run_worker(store, runtime, options);

  // ...then rot one byte in the middle of a middle shard's log.
  const fs::path log = fs::path(dir) / "shards" / "shard_1.log";
  std::string text;
  {
    std::ifstream in(log, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::size_t second_line = text.find('\n') + 1;
  const std::size_t flip = text.find(' ', second_line + 3) + 1;
  text[flip] = text[flip] == '7' ? '8' : '7';
  std::ofstream(log, std::ios::binary) << text;

  // The merger must refuse the damaged shard, with a diagnostic that
  // names it — silent inclusion of rotten records is the one unforgivable
  // outcome.
  {
    JobRuntime merge_runtime(store);
    try {
      merge_job(store, merge_runtime, nullptr);
      FAIL() << "merge consumed a corrupt shard log";
    } catch (const ScenarioError& error) {
      EXPECT_NE(std::string(error.what()).find("shard 1"),
                std::string::npos)
          << error.what();
      EXPECT_NE(std::string(error.what()).find("corrupt"),
                std::string::npos)
          << error.what();
    }
  }

  // A worker quarantines, recomputes from the watermark, and the merge is
  // byte-identical again. The quarantined log is evidence only while the
  // recompute is pending: once the fresh log passes CRC verification the
  // worker GCs it, so quarantine files never accumulate.
  const std::uint64_t trials_before = trials_executed();
  WorkerOptions recover;
  recover.owner = "recoverer";
  const WorkerReport report = run_worker(store, runtime, recover);
  EXPECT_EQ(report.shards_quarantined, 1);
  EXPECT_EQ(report.quarantines_cleared, 1);
  EXPECT_GT(trials_executed() - trials_before, 0u);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "shards" / "shard_1.quarantine"));
  JobRuntime merge_runtime(store);
  EXPECT_EQ(merge_job(store, merge_runtime, nullptr), reference_rows());
}

}  // namespace
}  // namespace dualcast::service
