// Fleet coordination: membership publish/scan/stale/reap (deterministic
// under a FakeClock), the gc sweep's orphan lifecycle (stale members'
// lease debris, superseded quarantines), the fleet status view, placement
// policies (fair finishes a small job before a concurrent big one; fifo
// does not), and the two-daemon contract: concurrent daemons on one jobs
// directory drain disjoint shard sets with no duplicate trial execution.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "analysis/trials.hpp"
#include "service/daemon.hpp"
#include "service/fleet.hpp"
#include "service/service.hpp"

namespace dualcast::service {
namespace {

namespace fs = std::filesystem;
using scenario::ScenarioSpec;
using util::FakeClock;

const ScenarioSpec& mini_scenario() {
  static const std::string name = "svc-test/fleet-mini";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec;
    spec.name = name;
    spec.title = "service fleet mini";
    spec.topology = "dual_clique({x})";
    spec.problem = "global(1)";
    spec.sweep = {8, 12};
    spec.trials = 3;
    spec.base_seed = 66;
    spec.max_rounds = "200*n";
    spec.columns = {
        {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
        {"robin+collider", "round_robin", "collider", ""},
    };
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("dualcast_fleet_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Drops a job for the mini scenario with `trials` (the job-identity
/// knob) into `jobs_dir`/`name`.
std::string drop_job(const std::string& jobs_dir, const std::string& name,
                     int trials, int shard_tasks = 4,
                     int lease_ttl_seconds = 60) {
  scenario::RunOptions run_options;
  run_options.trials_override = trials;
  const JobSpec job = make_job_spec({&mini_scenario()}, run_options,
                                    shard_tasks, lease_ttl_seconds);
  const std::string dir = jobs_dir + "/" + name;
  JobStore::create_or_attach(dir, job);
  return dir;
}

TEST(FleetRegistry, PublishScanStaleReapUnderFakeClock) {
  const std::string jobs_dir = fresh_dir("registry");
  FakeClock clock(1000);
  StoreEnv env;
  env.clock = &clock;
  FleetRegistry fleet(jobs_dir, env);

  MemberRecord a;
  a.id = "alpha";
  a.pid = 11;
  a.placement = "fair";
  a.ttl_seconds = 10;
  MemberRecord b;
  b.id = "beta";
  b.pid = 22;
  b.ttl_seconds = 10;
  fleet.publish(a);
  fleet.publish(b);

  std::vector<MemberState> members = fleet.scan();
  ASSERT_EQ(members.size(), 2u);
  for (const MemberState& member : members) {
    EXPECT_FALSE(member.stale);
    EXPECT_EQ(member.age, 0);
    EXPECT_EQ(member.record.heartbeat, 1000);
  }

  // alpha renews at t=1006; at t=1011 beta (heartbeat 1000, ttl 10) is
  // exactly stale (1000 + 10 <= 1011) while alpha is 5s fresh. Pure
  // FakeClock arithmetic — no sleeping, no wall-clock flake.
  clock.advance(6);
  fleet.publish(a);
  clock.advance(5);
  members = fleet.scan();
  ASSERT_EQ(members.size(), 2u);
  for (const MemberState& member : members) {
    if (member.record.id == "alpha") {
      EXPECT_FALSE(member.stale);
      EXPECT_EQ(member.age, 5);
      EXPECT_EQ(member.record.placement, "fair");
    } else {
      EXPECT_TRUE(member.stale);
      EXPECT_EQ(member.age, 11);
    }
  }

  const std::vector<std::string> reaped = fleet.reap_stale();
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_EQ(reaped[0], "beta");
  EXPECT_EQ(fleet.scan().size(), 1u);

  // Clean deregistration removes the file; a second remove is a no-op.
  fleet.remove("alpha");
  fleet.remove("alpha");
  EXPECT_TRUE(fleet.scan().empty());
}

TEST(FleetGc, SweepReclaimsStaleOwnerLeasesAndVerifiedQuarantines) {
  const std::string jobs_dir = fresh_dir("gc");
  FakeClock clock(5000);
  StoreEnv env;
  env.clock = &clock;
  const std::string job_dir =
      drop_job(jobs_dir, "job1", /*trials=*/3, /*shard_tasks=*/4,
               /*lease_ttl_seconds=*/30);

  // A daemon "ghost" leases shard 0, heartbeats its membership once, and
  // vanishes. Its lease expires at 5030, its membership at 5010.
  JobStore store = JobStore::open(job_dir, env);
  ASSERT_TRUE(store.try_lease(0, "ghost"));
  FleetRegistry fleet(jobs_dir, env);
  MemberRecord ghost;
  ghost.id = "ghost";
  ghost.ttl_seconds = 10;
  fleet.publish(ghost);

  // Before anything expires the sweep must touch nothing: the lease is
  // live (expiry is the sole safety mechanism) and the member is fresh.
  GcReport untouched = gc_sweep(jobs_dir, env);
  EXPECT_EQ(untouched.jobs_swept, 1);
  EXPECT_EQ(untouched.members_reaped, 0);
  EXPECT_EQ(untouched.leases_reclaimed, 0);
  ASSERT_EQ(store.scan_leases().size(), 1u);

  // One sweep after both went stale: the member is reaped AND its expired
  // lease reclaimed in the same pass — the reaped ids feed straight into
  // per-job lease reclamation, which is why daemons sweep at heartbeat
  // cadence (membership outlives the lease TTL it vouches for).
  clock.advance(35);  // member stale at 5010, lease expired at 5030
  GcReport reaped = gc_sweep(jobs_dir, env);
  EXPECT_EQ(reaped.members_reaped, 1);
  EXPECT_EQ(reaped.leases_reclaimed, 1);
  EXPECT_TRUE(store.scan_leases().empty());

  // Done-shard debris needs no membership hint: complete the job, park an
  // expired lease of an unknown owner on a done shard, and the sweep
  // removes it (the shard's records are final; the lease guards nothing).
  const JobRuntime runtime(store);
  WorkerOptions finish;
  finish.owner = "live";
  run_worker(store, runtime, finish);
  ASSERT_TRUE(store.try_lease(1, "straggler"));
  clock.advance(40);
  GcReport cleaned = gc_sweep(jobs_dir, env);
  EXPECT_EQ(cleaned.leases_reclaimed, 1);
  EXPECT_TRUE(store.scan_leases().empty());

  // Quarantine GC: a quarantine file beside a shard whose live log
  // verifies is superseded evidence — the sweep deletes it.
  const fs::path quarantine =
      fs::path(job_dir) / "shards" / "shard_0.quarantine";
  std::ofstream(quarantine) << "old rotten log\n";
  GcReport swept = gc_sweep(jobs_dir, env);
  EXPECT_EQ(swept.quarantines_removed, 1);
  EXPECT_FALSE(fs::exists(quarantine));
}

TEST(FleetStatus, RendersMembersAndJobsDeterministicallyUnderFakeClock) {
  const std::string jobs_dir = fresh_dir("status");
  FakeClock clock(9000);
  StoreEnv env;
  env.clock = &clock;
  const std::string job_dir = drop_job(jobs_dir, "job1", /*trials=*/3);

  JobStore store = JobStore::open(job_dir, env);
  ASSERT_TRUE(store.try_lease(0, "live-d"));

  FleetRegistry fleet(jobs_dir, env);
  MemberRecord live;
  live.id = "live-d";
  live.placement = "fair";
  live.ttl_seconds = 15;
  fleet.publish(live);
  MemberRecord dead;
  dead.id = "dead-d";
  dead.ttl_seconds = 15;
  fleet.publish(dead);
  clock.advance(20);
  fleet.publish(live);  // renews; dead-d's heartbeat is now 20s old

  std::ostringstream out;
  print_fleet_status(jobs_dir, env, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("daemon live-d [live]"), std::string::npos) << text;
  EXPECT_NE(text.find("daemon dead-d [STALE]"), std::string::npos) << text;
  EXPECT_NE(text.find("heartbeat 20s ago"), std::string::npos) << text;
  EXPECT_NE(text.find("placement fair"), std::string::npos) << text;
  EXPECT_NE(text.find("1 lease(s) held"), std::string::npos) << text;
  EXPECT_NE(text.find("0/12 tasks"), std::string::npos) << text;

  // Deterministic: the same fake instant renders the same bytes.
  std::ostringstream again;
  print_fleet_status(jobs_dir, env, again);
  EXPECT_EQ(text, again.str());
}

TEST(FleetStatus, JobStatusStaleLabelIsClockDeterministic) {
  // Satellite of the fleet view: single-job `status` derives lease age
  // and STALE from the *store's* clock at scan time, so a FakeClock pins
  // the rendered bytes.
  const std::string jobs_dir = fresh_dir("jobstatus");
  FakeClock clock(100);
  StoreEnv env;
  env.clock = &clock;
  const std::string job_dir =
      drop_job(jobs_dir, "job1", /*trials=*/3, /*shard_tasks=*/4,
               /*lease_ttl_seconds=*/30);
  JobStore store = JobStore::open(job_dir, env);
  ASSERT_TRUE(store.try_lease(0, "ager"));

  clock.advance(7);
  std::ostringstream young;
  print_job_status(store, young);
  EXPECT_NE(young.str().find("leased by ager (age 7s"), std::string::npos)
      << young.str();
  EXPECT_EQ(young.str().find("STALE"), std::string::npos) << young.str();

  clock.advance(25);  // age 32 > ttl 30: expired, rendered STALE
  std::ostringstream stale;
  print_job_status(store, stale);
  EXPECT_NE(stale.str().find("leased by ager (age 32s"), std::string::npos)
      << stale.str();
  EXPECT_NE(stale.str().find("STALE"), std::string::npos) << stale.str();
}

TEST(FleetPlacement, FairFinishesSmallJobBeforeBigAndFifoDoesNot) {
  // a_big sorts (and is discovered) before b_small. Under fifo the daemon
  // full-drains a_big first; under fair the one-shard b_small interleaves
  // and completes while a_big is still being worked.
  const auto run_once = [&](Placement placement, const std::string& tag) {
    const std::string jobs_dir = fresh_dir("placement_" + tag);
    const std::string big_dir =
        drop_job(jobs_dir, "a_big", /*trials=*/9, /*shard_tasks=*/4);
    const std::string small_dir =
        drop_job(jobs_dir, "b_small", /*trials=*/1, /*shard_tasks=*/4);
    std::ostringstream log;
    DaemonOptions options;
    options.jobs_dir = jobs_dir;
    options.cache_dir.clear();
    options.owner = "placement-" + tag;
    options.placement = placement;
    options.max_cycles = 10;
    options.poll_initial_ms = 1;
    options.poll_max_ms = 2;
    options.log = &log;
    const DaemonReport report = run_daemon(options);
    EXPECT_EQ(report.jobs_completed, 2) << log.str();
    const std::string text = log.str();
    const std::size_t big_done = text.find("completed job in " + big_dir);
    const std::size_t small_done =
        text.find("completed job in " + small_dir);
    EXPECT_NE(big_done, std::string::npos) << text;
    EXPECT_NE(small_done, std::string::npos) << text;
    return std::make_pair(big_done, small_done);
  };

  const auto [fifo_big, fifo_small] = run_once(Placement::fifo, "fifo");
  EXPECT_LT(fifo_big, fifo_small)
      << "fifo must drain the first-discovered (big) job first";
  const auto [fair_big, fair_small] = run_once(Placement::fair, "fair");
  EXPECT_LT(fair_small, fair_big)
      << "fair must complete the small job before the big drain finishes";
}

TEST(FleetPlacement, FairClaimBudgetScalesWithHeadroom) {
  // budget = max(1, cores - floor(load)): an idle box takes its core
  // count, load eats into it one whole core at a time, and the floor is
  // always 1 (a saturated or unknown box still makes progress).
  EXPECT_EQ(fair_claim_budget(0, 0), 1) << "unknown cores";
  EXPECT_EQ(fair_claim_budget(-1, 50), 1);
  EXPECT_EQ(fair_claim_budget(1, 0), 1);
  EXPECT_EQ(fair_claim_budget(4, 0), 4);
  EXPECT_EQ(fair_claim_budget(4, 99), 4) << "load rounds down";
  EXPECT_EQ(fair_claim_budget(4, 100), 3);
  EXPECT_EQ(fair_claim_budget(4, 350), 1);
  EXPECT_EQ(fair_claim_budget(4, 900), 1) << "overload clamps to 1";
  EXPECT_EQ(fair_claim_budget(8, 250), 6);
}

TEST(FleetRegistry, MemberRecordRoundTripsHostResources) {
  const std::string jobs_dir = fresh_dir("resources");
  FakeClock clock(3000);
  StoreEnv env;
  env.clock = &clock;
  FleetRegistry fleet(jobs_dir, env);

  MemberRecord rich;
  rich.id = "rich";
  rich.pid = 7;
  rich.placement = "fair";
  rich.ttl_seconds = 10;
  rich.host = "box-a";
  rich.cores = 16;
  rich.load100 = 275;
  MemberRecord bare;  // a pre-resources record: fields stay at defaults
  bare.id = "bare";
  bare.ttl_seconds = 10;
  fleet.publish(rich);
  fleet.publish(bare);

  for (const MemberState& member : fleet.scan()) {
    if (member.record.id == "rich") {
      EXPECT_EQ(member.record.host, "box-a");
      EXPECT_EQ(member.record.cores, 16);
      EXPECT_EQ(member.record.load100, 275);
    } else {
      EXPECT_TRUE(member.record.host.empty());
      EXPECT_EQ(member.record.cores, 0);
      EXPECT_EQ(member.record.load100, 0);
    }
  }
}

TEST(FleetPlacement, FairClaimRoundsFollowTheInjectedBudget) {
  // One 6-shard job, one daemon. With cores=3/load=1.00 the budget is 2,
  // so the fair drain takes ceil(6/2) = 3 claim rounds; with cores=1 the
  // budget floor of 1 takes 6. claim_rounds is the observable — wall
  // clock and worker interleaving never enter the count.
  const auto rounds_with = [&](int cores, int load100,
                               const std::string& tag) {
    const std::string jobs_dir = fresh_dir("budget_" + tag);
    drop_job(jobs_dir, "job", /*trials=*/6, /*shard_tasks=*/4);
    DaemonOptions options;
    options.jobs_dir = jobs_dir;
    options.cache_dir.clear();
    options.owner = "budget-" + tag;
    options.placement = Placement::fair;
    options.resources = {"testbox", cores, load100};
    options.max_cycles = 5;
    options.poll_initial_ms = 1;
    options.poll_max_ms = 2;
    const DaemonReport report = run_daemon(options);
    EXPECT_EQ(report.jobs_completed, 1) << tag;
    return report.claim_rounds;
  };
  EXPECT_EQ(rounds_with(3, 100, "headroom2"), 3);
  EXPECT_EQ(rounds_with(1, 0, "floor"), 6);
}

TEST(FleetStatus, JsonIsByteDeterministicUnderFakeClock) {
  const std::string jobs_dir = fresh_dir("json");
  FakeClock clock(9000);
  StoreEnv env;
  env.clock = &clock;
  const std::string job_dir = drop_job(jobs_dir, "job1", /*trials=*/3);
  JobStore store = JobStore::open(job_dir, env);
  ASSERT_TRUE(store.try_lease(0, "live-d"));

  FleetRegistry fleet(jobs_dir, env);
  MemberRecord live;
  live.id = "live-d";
  live.pid = 42;
  live.placement = "fair";
  live.ttl_seconds = 15;
  live.host = "box-a";
  live.cores = 4;
  live.load100 = 150;
  fleet.publish(live);
  clock.advance(5);

  const std::string json = fleet_status_json(jobs_dir, env);
  EXPECT_EQ(json, fleet_status_json(jobs_dir, env))
      << "same fake instant, same bytes";
  EXPECT_NE(json.find("\"id\":\"live-d\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"host\":\"box-a\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cores\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"load100\":150"), std::string::npos) << json;
  EXPECT_NE(json.find("\"claim_budget\":3"), std::string::npos)
      << "cores 4, load 1.50 -> budget 3: " << json;
  EXPECT_NE(json.find("\"heartbeat_age_seconds\":5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"leases_held\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tasks_total\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shards_done\":0"), std::string::npos) << json;
  EXPECT_EQ(json.back(), '\n');
}

TEST(FleetGc, DryRunReportsEverythingAndMutatesNothing) {
  const std::string jobs_dir = fresh_dir("dryrun");
  FakeClock clock(5000);
  StoreEnv env;
  env.clock = &clock;
  const std::string job_dir =
      drop_job(jobs_dir, "job1", /*trials=*/3, /*shard_tasks=*/4,
               /*lease_ttl_seconds=*/30);

  // The full debris menagerie: a stale member, its expired lease, and a
  // superseded quarantine beside a verified-complete shard.
  JobStore store = JobStore::open(job_dir, env);
  ASSERT_TRUE(store.try_lease(0, "ghost"));
  FleetRegistry fleet(jobs_dir, env);
  MemberRecord ghost;
  ghost.id = "ghost";
  ghost.ttl_seconds = 10;
  fleet.publish(ghost);
  const JobRuntime runtime(store);
  WorkerOptions finish;
  finish.owner = "live";
  run_worker(store, runtime, finish);
  const fs::path quarantine =
      fs::path(job_dir) / "shards" / "shard_1.quarantine";
  std::ofstream(quarantine) << "old rotten log\n";
  clock.advance(35);  // member stale at 5010, ghost lease expired at 5030

  std::ostringstream log;
  const GcReport dry = gc_sweep(jobs_dir, env, &log, /*dry_run=*/true);
  EXPECT_TRUE(dry.dry_run);
  EXPECT_EQ(dry.members_reaped, 1);
  EXPECT_EQ(dry.leases_reclaimed, 1);
  EXPECT_EQ(dry.quarantines_removed, 1);
  EXPECT_NE(log.str().find("would"), std::string::npos) << log.str();

  // Nothing moved: the member file, the lease, and the quarantine are
  // all still on disk, and a second dry run reports the same counts.
  EXPECT_EQ(fleet.scan().size(), 1u);
  EXPECT_EQ(store.scan_leases().size(), 1u);
  EXPECT_TRUE(fs::exists(quarantine));
  const GcReport again = gc_sweep(jobs_dir, env, nullptr, /*dry_run=*/true);
  EXPECT_EQ(again.members_reaped, 1);
  EXPECT_EQ(again.leases_reclaimed, 1);
  EXPECT_EQ(again.quarantines_removed, 1);

  // The real sweep then reclaims exactly what the dry run promised.
  const GcReport wet = gc_sweep(jobs_dir, env);
  EXPECT_FALSE(wet.dry_run);
  EXPECT_EQ(wet.members_reaped, dry.members_reaped);
  EXPECT_EQ(wet.leases_reclaimed, dry.leases_reclaimed);
  EXPECT_EQ(wet.quarantines_removed, dry.quarantines_removed);
  EXPECT_TRUE(fleet.scan().empty());
  EXPECT_TRUE(store.scan_leases().empty());
  EXPECT_FALSE(fs::exists(quarantine));
}

TEST(FleetDaemons, TwoDaemonsDrainDisjointShardSetsWithNoDuplicateWork) {
  const std::string jobs_dir = fresh_dir("twodaemons");
  const std::string dir_a =
      drop_job(jobs_dir, "job_a", /*trials=*/6, /*shard_tasks=*/3);
  const std::string dir_b =
      drop_job(jobs_dir, "job_b", /*trials=*/5, /*shard_tasks=*/3);
  const std::uint64_t trials_before = trials_executed();

  const auto daemon_body = [&](const std::string& owner,
                               DaemonReport* report,
                               std::ostringstream* log) {
    DaemonOptions options;
    options.jobs_dir = jobs_dir;
    options.cache_dir.clear();
    options.owner = owner;
    options.placement = Placement::fair;
    options.max_cycles = 40;
    options.poll_initial_ms = 1;
    options.poll_max_ms = 5;
    options.log = log;
    *report = run_daemon(options);
  };
  DaemonReport a;
  DaemonReport b;
  std::ostringstream log_a;
  std::ostringstream log_b;
  std::thread thread_a(daemon_body, "fleet-a", &a, &log_a);
  std::thread thread_b(daemon_body, "fleet-b", &b, &log_b);
  thread_a.join();
  thread_b.join();

  // Leases partition the shards: every task ran exactly once across the
  // two daemons — the global trial counter moved by exactly the task
  // total, and the daemons' executed-task counts sum to it.
  const int total_tasks = JobStore::open(dir_a).total_tasks() +
                          JobStore::open(dir_b).total_tasks();
  EXPECT_EQ(trials_executed() - trials_before,
            static_cast<std::uint64_t>(total_tasks))
      << log_a.str() << log_b.str();
  EXPECT_EQ(a.tasks_executed + b.tasks_executed, total_tasks);
  EXPECT_EQ(a.leases_stolen + b.leases_stolen, 0)
      << "live daemons' leases must never be stolen";

  // Per-shard record counts are exact — no shard holds duplicate records.
  for (const std::string& dir : {dir_a, dir_b}) {
    const JobStore store = JobStore::open(dir);
    for (const ShardState& shard : store.scan()) {
      EXPECT_TRUE(shard.done);
      EXPECT_EQ(static_cast<int>(store.read_shard_records(shard.index)
                                     .size()),
                shard.end - shard.begin)
          << dir << " shard " << shard.index;
    }
  }

  // And the merges reproduce the single-process bytes.
  for (const std::string& dir : {dir_a, dir_b}) {
    JobStore store = JobStore::open(dir);
    JobRuntime runtime(store);
    std::vector<std::string> reference;
    for (const scenario::ScenarioResult& result : scenario::run_scenarios(
             {&mini_scenario()}, store.spec().run_options())) {
      scenario::append_json_rows(result, reference);
    }
    EXPECT_EQ(merge_job(store, runtime, nullptr), reference) << dir;
  }
}

}  // namespace
}  // namespace dualcast::service
