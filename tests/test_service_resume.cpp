// Crash-safe resume: a worker killed mid-shard (lease still held) loses no
// acknowledged record; a restarted worker steals the stale lease, skips
// everything recorded, measures only the remainder, and the merged JSON is
// byte-identical to an uninterrupted single-process run.

#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/trials.hpp"
#include "service/service.hpp"

namespace dualcast::service {
namespace {

namespace fs = std::filesystem;
using scenario::ScenarioError;
using scenario::ScenarioSpec;

const ScenarioSpec& mini_scenario() {
  static const std::string name = "svc-test/resume-mini";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec;
    spec.name = name;
    spec.title = "service resume mini";
    spec.topology = "dual_clique({x})";
    spec.problem = "global(1)";
    spec.sweep = {8, 12};
    spec.trials = 3;
    spec.base_seed = 21;
    spec.max_rounds = "200*n";
    spec.columns = {
        {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
        {"robin+collider", "round_robin", "collider", ""},
    };
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("dualcast_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

std::vector<std::string> reference_rows() {
  std::vector<std::string> rows;
  for (const scenario::ScenarioResult& result :
       scenario::run_scenarios({&mini_scenario()}, {})) {
    scenario::append_json_rows(result, rows);
  }
  return rows;
}

TEST(ServiceResume, KilledWorkerResumesByteIdentical) {
  const std::vector<std::string> reference = reference_rows();
  ASSERT_EQ(reference.size(), 4u);  // 2 points x 2 columns

  // lease_ttl 0 so the killed worker's abandoned lease is instantly
  // stealable; shard_tasks 3 cuts the 12 tasks into 4 shards.
  const JobSpec job =
      make_job_spec({&mini_scenario()}, {}, /*shard_tasks=*/3,
                    /*lease_ttl_seconds=*/0);
  JobStore store =
      JobStore::create_or_attach(fresh_dir("resume_job"), job);
  const JobRuntime runtime(store);
  ASSERT_EQ(store.total_tasks(), 12);
  ASSERT_EQ(store.shard_count(), 4);

  // Worker 1 is killed mid-shard: one full shard plus one task of the
  // next, then the crash hook abandons with the lease held.
  WorkerOptions crash;
  crash.owner = "victim";
  crash.crash_after_tasks = 4;
  const WorkerReport first = run_worker(store, runtime, crash);
  EXPECT_TRUE(first.crashed);
  EXPECT_EQ(first.tasks_executed, 4);
  EXPECT_EQ(first.shards_completed, 1);

  // Merging an incomplete job must refuse, not fabricate rows.
  {
    JobRuntime merge_runtime(store);
    EXPECT_THROW(merge_job(store, merge_runtime, nullptr), ScenarioError);
  }

  // Worker 2 restarts cold: the done shard is never leased again, the
  // stale lease on the partial shard is stolen, its 1 recorded task is
  // skipped, and exactly the 8 missing tasks are measured.
  const std::uint64_t trials_before = trials_executed();
  WorkerOptions retry;
  retry.owner = "recoverer";
  const WorkerReport second = run_worker(store, runtime, retry);
  EXPECT_FALSE(second.crashed);
  EXPECT_EQ(second.tasks_skipped, 1);
  EXPECT_EQ(second.tasks_executed, 8);
  EXPECT_EQ(trials_executed() - trials_before, 8u);

  JobRuntime merge_runtime(store);
  EXPECT_EQ(merge_job(store, merge_runtime, nullptr), reference);
}

TEST(ServiceResume, TwoWorkersShardedRunIsByteIdentical) {
  const std::vector<std::string> reference = reference_rows();
  ServeOptions options;
  options.job_dir = fresh_dir("resume_two_workers");
  options.cache_dir.clear();  // isolate from the cache tests
  options.workers = 2;
  options.shard_tasks = 3;
  const ServeSummary summary =
      serve({&mini_scenario()}, {}, options);
  EXPECT_EQ(summary.computed, 1);
  EXPECT_EQ(summary.trials_run, 12u);
  EXPECT_EQ(summary.rows, reference);
}

TEST(ServiceResume, ResumeAcrossSeparateServeCalls) {
  // serve() itself resumes: crash a lone worker against the job dir, then
  // point serve at the same directory — it attaches, finishes the
  // remainder, and emits the reference rows.
  const std::vector<std::string> reference = reference_rows();
  const std::string dir = fresh_dir("resume_serve");
  const JobSpec job = make_job_spec({&mini_scenario()}, {}, 3, 0);
  {
    JobStore store = JobStore::create_or_attach(dir, job);
    const JobRuntime runtime(store);
    WorkerOptions crash;
    crash.owner = "victim";
    crash.crash_after_tasks = 5;
    ASSERT_TRUE(run_worker(store, runtime, crash).crashed);
  }
  ServeOptions options;
  options.job_dir = dir;
  options.cache_dir.clear();
  options.shard_tasks = 3;
  options.lease_ttl_seconds = 0;
  const std::uint64_t trials_before = trials_executed();
  const ServeSummary summary = serve({&mini_scenario()}, {}, options);
  EXPECT_EQ(summary.rows, reference);
  EXPECT_EQ(summary.trials_run, trials_executed() - trials_before);
  EXPECT_EQ(summary.trials_run, 7u);  // 12 total - 5 already recorded
}

}  // namespace
}  // namespace dualcast::service
