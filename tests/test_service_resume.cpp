// Crash-safe resume: a worker killed mid-shard (lease still held) loses no
// acknowledged record; a restarted worker steals the stale lease, skips
// everything recorded, measures only the remainder, and the merged JSON is
// byte-identical to an uninterrupted single-process run. The "kill" is an
// injected filesystem fault: FaultyFs throws InjectedCrash at a scheduled
// append, which no retry loop may catch — exactly a kill -9 at that
// syscall.

#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/trials.hpp"
#include "service/service.hpp"

namespace dualcast::service {
namespace {

namespace fs = std::filesystem;
using scenario::ScenarioError;
using scenario::ScenarioSpec;

const ScenarioSpec& mini_scenario() {
  static const std::string name = "svc-test/resume-mini";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec;
    spec.name = name;
    spec.title = "service resume mini";
    spec.topology = "dual_clique({x})";
    spec.problem = "global(1)";
    spec.sweep = {8, 12};
    spec.trials = 3;
    spec.base_seed = 21;
    spec.max_rounds = "200*n";
    spec.columns = {
        {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
        {"robin+collider", "round_robin", "collider", ""},
    };
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("dualcast_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

std::vector<std::string> reference_rows() {
  std::vector<std::string> rows;
  for (const scenario::ScenarioResult& result :
       scenario::run_scenarios({&mini_scenario()}, {})) {
    scenario::append_json_rows(result, rows);
  }
  return rows;
}

/// Kills a fresh worker at the `crash_at_append`-th shard-log append (a
/// crash mid-run with the lease left held); returns after the crash.
void run_crashing_worker(const std::string& dir, int crash_at_append) {
  util::FaultyFs faulty(util::real_fs());
  util::InjectedFault fault;
  fault.kind = util::InjectedFault::Kind::crash;
  fault.at = crash_at_append;
  fault.op = "append";
  fault.path_substr = "shards/";
  faulty.inject(fault);
  StoreEnv env;
  env.fs = &faulty;
  JobStore store = JobStore::open(dir, env);
  const JobRuntime runtime(store);
  WorkerOptions options;
  options.owner = "victim";
  try {
    run_worker(store, runtime, options);
    FAIL() << "worker survived its injected crash";
  } catch (const util::InjectedCrash&) {
    // The expected death. The store object is gone with the "process";
    // its fsync'd records and held lease remain on disk.
  }
  EXPECT_EQ(faulty.faults_fired(), 1);
}

TEST(ServiceResume, KilledWorkerResumesByteIdentical) {
  const std::vector<std::string> reference = reference_rows();
  ASSERT_EQ(reference.size(), 4u);  // 2 points x 2 columns

  // lease_ttl 0 so the killed worker's abandoned lease is instantly
  // stealable; shard_tasks 3 cuts the 12 tasks into 4 shards.
  const JobSpec job =
      make_job_spec({&mini_scenario()}, {}, /*shard_tasks=*/3,
                    /*lease_ttl_seconds=*/0);
  const std::string dir = fresh_dir("resume_job");
  JobStore store = JobStore::create_or_attach(dir, job);
  ASSERT_EQ(store.total_tasks(), 12);
  ASSERT_EQ(store.shard_count(), 4);

  // Worker 1 dies at its 5th record append: shard 0 (3 tasks) completed,
  // one record of shard 1 durable, the 5th append never lands — and the
  // shard 1 lease is still held by the corpse.
  run_crashing_worker(dir, /*crash_at_append=*/4);
  EXPECT_EQ(store.scan_shard_log(0).records.size(), 3u);
  EXPECT_TRUE(store.shard_done(0));
  EXPECT_EQ(store.scan_shard_log(1).records.size(), 1u);
  EXPECT_FALSE(store.shard_done(1));

  // Merging an incomplete job must refuse, not fabricate rows.
  {
    JobRuntime merge_runtime(store);
    EXPECT_THROW(merge_job(store, merge_runtime, nullptr), ScenarioError);
  }

  // Worker 2 restarts cold: the done shard is never leased again, the
  // stale lease on the partial shard is stolen, its 1 recorded task is
  // skipped, and exactly the 8 missing tasks are measured.
  const std::uint64_t trials_before = trials_executed();
  const JobRuntime runtime(store);
  WorkerOptions retry;
  retry.owner = "recoverer";
  const WorkerReport second = run_worker(store, runtime, retry);
  EXPECT_EQ(second.tasks_skipped, 1);
  EXPECT_EQ(second.tasks_executed, 8);
  EXPECT_EQ(trials_executed() - trials_before, 8u);

  JobRuntime merge_runtime(store);
  EXPECT_EQ(merge_job(store, merge_runtime, nullptr), reference);
}

TEST(ServiceResume, TwoWorkersShardedRunIsByteIdentical) {
  const std::vector<std::string> reference = reference_rows();
  ServeOptions options;
  options.job_dir = fresh_dir("resume_two_workers");
  options.cache_dir.clear();  // isolate from the cache tests
  options.workers = 2;
  options.shard_tasks = 3;
  const ServeSummary summary =
      serve({&mini_scenario()}, {}, options);
  EXPECT_EQ(summary.computed, 1);
  EXPECT_EQ(summary.trials_run, 12u);
  EXPECT_EQ(summary.rows, reference);
}

TEST(ServiceResume, ResumeAcrossSeparateServeCalls) {
  // serve() itself resumes: crash a lone worker against the job dir, then
  // point serve at the same directory — it attaches, finishes the
  // remainder, and emits the reference rows.
  const std::vector<std::string> reference = reference_rows();
  const std::string dir = fresh_dir("resume_serve");
  const JobSpec job = make_job_spec({&mini_scenario()}, {}, 3, 0);
  JobStore::create_or_attach(dir, job);
  run_crashing_worker(dir, /*crash_at_append=*/5);  // 5 records durable
  ServeOptions options;
  options.job_dir = dir;
  options.cache_dir.clear();
  options.shard_tasks = 3;
  options.lease_ttl_seconds = 0;
  const std::uint64_t trials_before = trials_executed();
  const ServeSummary summary = serve({&mini_scenario()}, {}, options);
  EXPECT_EQ(summary.rows, reference);
  EXPECT_EQ(summary.trials_run, trials_executed() - trials_before);
  EXPECT_EQ(summary.trials_run, 7u);  // 12 total - 5 already recorded
}

}  // namespace
}  // namespace dualcast::service
