// Shared-filesystem semantics hardening: the service's lease/recovery
// contracts exercised behind SharedFsSim NFS-client views. Each test
// gives one or more stores their own view of a single backing directory
// and checks the dispositions the hardening pass installed:
//   * two views drain one job without duplicate work, merge
//     byte-identical;
//   * a steal attempt re-verifies through a fresh read, so a renewal
//     the stale view had not seen yet is honored (no live-lease theft);
//   * release/renew refuse to clobber a thief's live lease when the
//     old owner's view still shows its own stale lease;
//   * recover_all peeks the server fresh, so damage invisible to a
//     pinned stale view is still found (and healed under a lease);
//   * a whole daemon behind a skewed view completes its job and the
//     merge reproduces the single-process reference bytes, per seed.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "service/daemon.hpp"
#include "service/service.hpp"
#include "util/fs_sim.hpp"

namespace dualcast::service {
namespace {

namespace fs = std::filesystem;
using scenario::ScenarioSpec;
using util::FakeClock;
using util::SharedFsSim;
using util::SharedFsSimConfig;

const ScenarioSpec& mini_scenario() {
  static const std::string name = "svc-test/sharedfs-mini";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec;
    spec.name = name;
    spec.title = "service shared-fs mini";
    spec.topology = "dual_clique({x})";
    spec.problem = "global(1)";
    spec.sweep = {8, 12};
    spec.trials = 3;
    spec.base_seed = 91;
    spec.max_rounds = "200*n";
    spec.columns = {
        {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
        {"robin+collider", "round_robin", "collider", ""},
    };
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("dualcast_sharedfs_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string drop_job(const std::string& jobs_dir, const std::string& name,
                     int trials, int shard_tasks = 4,
                     int lease_ttl_seconds = 60) {
  scenario::RunOptions run_options;
  run_options.trials_override = trials;
  const JobSpec job = make_job_spec({&mini_scenario()}, run_options,
                                    shard_tasks, lease_ttl_seconds);
  const std::string dir = jobs_dir + "/" + name;
  JobStore::create_or_attach(dir, job);
  return dir;
}

std::vector<std::string> reference_rows(const JobStore& store) {
  std::vector<std::string> rows;
  for (const scenario::ScenarioResult& result : scenario::run_scenarios(
           {&mini_scenario()}, store.spec().run_options())) {
    scenario::append_json_rows(result, rows);
  }
  return rows;
}

/// A view with aggressive staleness: every cached entry lives the full
/// window, so cross-view visibility is reliably delayed.
SharedFsSimConfig skewed(std::uint64_t seed, int stale_ops = 6) {
  SharedFsSimConfig config;
  config.seed = seed;
  config.attr_stale_ops = stale_ops;
  config.dir_stale_ops = stale_ops;
  return config;
}

TEST(SharedFsService, TwoViewsDrainOneJobAndMergeByteIdentical) {
  const std::string jobs_dir = fresh_dir("twoviews");
  const std::string job_dir = drop_job(jobs_dir, "job", /*trials=*/6);

  SharedFsSim view_a(util::real_fs(), skewed(101));
  SharedFsSim view_b(util::real_fs(), skewed(202));
  StoreEnv env_a;
  env_a.fs = &view_a;
  StoreEnv env_b;
  env_b.fs = &view_b;
  JobStore store_a = JobStore::open(job_dir, env_a);
  JobStore store_b = JobStore::open(job_dir, env_b);
  JobRuntime runtime_a(store_a);
  JobRuntime runtime_b(store_b);

  // Alternate single-shard claims between the two views until neither
  // can claim: leases partition the shards even though each side's
  // directory listings and lease reads may be stale between claims.
  int total_shards = 0;
  for (int round = 0; round < 2 * store_a.shard_count() + 4; ++round) {
    WorkerOptions options;
    options.owner = round % 2 == 0 ? "view-a" : "view-b";
    options.max_shards = 1;
    const WorkerReport report =
        round % 2 == 0 ? run_worker(store_a, runtime_a, options)
                       : run_worker(store_b, runtime_b, options);
    total_shards += report.shards_completed;
    EXPECT_EQ(report.leases_stolen, 0)
        << "no lease ever expired, so nothing may be stolen";
    if (total_shards == store_a.shard_count()) break;
  }
  EXPECT_EQ(total_shards, store_a.shard_count());

  // Both views saw the shared directory through a cache at least once.
  EXPECT_GT(view_a.ops() + view_b.ops(), 0);

  // Merge through a *fresh* store (server truth): byte-identical, and
  // record counts are exact — no duplicate execution slipped through.
  JobStore store = JobStore::open(job_dir);
  for (const ShardState& shard : store.scan()) {
    EXPECT_TRUE(shard.done);
    EXPECT_EQ(static_cast<int>(store.read_shard_records(shard.index).size()),
              shard.end - shard.begin);
  }
  JobRuntime runtime(store);
  EXPECT_EQ(merge_job(store, runtime, nullptr), reference_rows(store));
}

TEST(SharedFsService, StealReverifyHonorsRenewalTheStaleViewMissed) {
  const std::string jobs_dir = fresh_dir("stealverify");
  const std::string job_dir = drop_job(jobs_dir, "job", /*trials=*/3,
                                       /*shard_tasks=*/4,
                                       /*lease_ttl_seconds=*/30);
  FakeClock clock(1000);
  SharedFsSim view_a(util::real_fs(), skewed(7, /*stale_ops=*/50));
  SharedFsSim view_b(util::real_fs(), skewed(8, /*stale_ops=*/50));
  StoreEnv env_a;
  env_a.fs = &view_a;
  env_a.clock = &clock;
  StoreEnv env_b;
  env_b.fs = &view_b;
  env_b.clock = &clock;
  JobStore store_a = JobStore::open(job_dir, env_a);
  JobStore store_b = JobStore::open(job_dir, env_b);

  // A leases shard 0 (expiry 1030). B observes the lease — and its view
  // caches that observation; hold() pins it so the later re-read is
  // guaranteed to come from the stale cache, not a lucky revalidation.
  ASSERT_TRUE(store_a.try_lease(0, "alpha"));
  ASSERT_FALSE(store_b.try_lease(0, "beta"));
  view_b.hold(".lease", 1000);

  // A renews at t=1025 (expiry becomes 1055). At t=1035 B's *cached*
  // copy says the lease expired at 1030 — a naive steal would evict a
  // live lease. The steal path's fresh re-verify must see 1055 and
  // refuse.
  clock.advance(25);
  store_a.renew_lease(0, "alpha");
  clock.advance(10);
  const int stale_before = view_b.stale_serves();
  bool stole = false;
  EXPECT_FALSE(store_b.try_lease(0, "beta", &stole));
  EXPECT_FALSE(stole);
  EXPECT_GT(view_b.stale_serves(), stale_before)
      << "the hazard must be real: B's first read served the stale copy";

  // Server truth: alpha still owns the shard with the renewed expiry.
  const std::vector<LeaseState> leases = JobStore::open(job_dir, [&] {
                                           StoreEnv env;
                                           env.clock = &clock;
                                           return env;
                                         }()).scan_leases();
  ASSERT_EQ(leases.size(), 1u);
  EXPECT_EQ(leases[0].owner, "alpha");
  EXPECT_EQ(leases[0].expiry, 1055);
  EXPECT_FALSE(leases[0].expired);
}

TEST(SharedFsService, ReleaseAndRenewRefuseToClobberThiefsLiveLease) {
  const std::string jobs_dir = fresh_dir("clobber");
  const std::string job_dir = drop_job(jobs_dir, "job", /*trials=*/3,
                                       /*shard_tasks=*/4,
                                       /*lease_ttl_seconds=*/5);
  FakeClock clock(2000);
  SharedFsSim view_a(util::real_fs(), skewed(5, /*stale_ops=*/50));
  StoreEnv env_a;
  env_a.fs = &view_a;
  env_a.clock = &clock;
  StoreEnv env_b;  // the thief reads the server directly
  env_b.clock = &clock;
  JobStore store_a = JobStore::open(job_dir, env_a);
  JobStore store_b = JobStore::open(job_dir, env_b);

  // A's lease (expiry 2005) expires; B legitimately steals at t=2010.
  // A's view still holds A's own write cached — pin it to make sure.
  ASSERT_TRUE(store_a.try_lease(0, "alpha"));
  view_a.hold(".lease", 1000);
  clock.advance(10);
  bool stole = false;
  ASSERT_TRUE(store_b.try_lease(0, "beta", &stole));
  ASSERT_TRUE(stole);

  // The old owner comes back. Off its stale view it still "owns" shard
  // 0 — but both release and renew re-read fresh and must leave beta's
  // live lease untouched.
  store_a.release_lease(0, "alpha");
  store_a.renew_lease(0, "alpha");
  const std::vector<LeaseState> leases = store_b.scan_leases();
  ASSERT_EQ(leases.size(), 1u);
  EXPECT_EQ(leases[0].owner, "beta");
  EXPECT_EQ(leases[0].expiry, 2015);
  EXPECT_FALSE(leases[0].expired);
}

TEST(SharedFsService, RecoverAllPeeksFreshThroughStaleView) {
  const std::string jobs_dir = fresh_dir("recover");
  const std::string job_dir = drop_job(jobs_dir, "job", /*trials=*/3);

  // Complete the job at the server, then open a view and warm its cache
  // with the healthy shard 0 log; pin the cache.
  {
    JobStore store = JobStore::open(job_dir);
    JobRuntime runtime(store);
    WorkerOptions options;
    options.owner = "filler";
    run_worker(store, runtime, options);
  }
  SharedFsSim view(util::real_fs(), skewed(9, /*stale_ops=*/50));
  StoreEnv env;
  env.fs = &view;
  JobStore store = JobStore::open(job_dir, env);
  ASSERT_FALSE(store.fresh_scan_shard_log(0).corrupt);
  view.hold("shard_0.log", 1000);

  // Another machine's crash corrupts the log at the server. The view's
  // pinned cache still serves the healthy bytes — but recover_all must
  // invalidate and peek fresh, find the damage, and quarantine under a
  // lease.
  std::ofstream(fs::path(job_dir) / "shards" / "shard_0.log",
                std::ios::app)
      << "zz not a record\n";
  const std::vector<int> rotten = store.recover_all("fixer");
  ASSERT_EQ(rotten.size(), 1u);
  EXPECT_EQ(rotten[0], 0);
  EXPECT_FALSE(store.shard_done(0)) << "done marker cleared for recompute";
  EXPECT_TRUE(store.scan_leases().empty())
      << "the recovery lease is released afterwards";

  // The shard recomputes and the merge still matches the reference.
  JobRuntime runtime(store);
  WorkerOptions options;
  options.owner = "fixer";
  run_worker(store, runtime, options);
  JobStore fresh = JobStore::open(job_dir);
  JobRuntime fresh_runtime(fresh);
  EXPECT_EQ(merge_job(fresh, fresh_runtime, nullptr),
            reference_rows(fresh));
}

TEST(SharedFsService, DaemonBehindSkewedViewCompletesAndMergesIdentical) {
  for (const std::uint64_t seed : {31ull, 47ull}) {
    const std::string jobs_dir =
        fresh_dir("daemon_seed" + std::to_string(seed));
    const std::string job_dir = drop_job(jobs_dir, "job", /*trials=*/4);

    SharedFsSim view(util::real_fs(), skewed(seed));
    StoreEnv env;
    env.fs = &view;
    std::ostringstream log;
    DaemonOptions options;
    options.jobs_dir = jobs_dir;
    options.cache_dir.clear();
    options.owner = "skewed-daemon";
    options.placement = Placement::fair;
    options.resources = {"simbox", 2, 0};
    options.max_cycles = 20;
    options.poll_initial_ms = 1;
    options.poll_max_ms = 2;
    options.log = &log;
    const DaemonReport report = run_daemon(options, env);
    EXPECT_EQ(report.jobs_completed, 1) << "seed " << seed << "\n"
                                        << log.str();
    EXPECT_GT(view.ops(), 0);

    JobStore store = JobStore::open(job_dir);
    JobRuntime runtime(store);
    EXPECT_EQ(merge_job(store, runtime, nullptr), reference_rows(store))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace dualcast::service
