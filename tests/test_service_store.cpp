// JobStore mechanics: meta roundtrip (with field-level corruption
// diagnostics), shard geometry, fsync'd CRC-checksummed completion records
// (exact double bit patterns, torn-line tolerance, v1 back-compat,
// mid-file corruption -> quarantine), done markers, and lease
// acquire/conflict/renew/release/steal semantics — including a two-thread
// steal race under skewed fake clocks.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "analysis/trials.hpp"
#include "service/job_store.hpp"
#include "service/service.hpp"

namespace dualcast::service {
namespace {

namespace fs = std::filesystem;
using scenario::ScenarioError;
using scenario::ScenarioSpec;

const ScenarioSpec& mini_scenario() {
  static const std::string name = "svc-test/mini";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec;
    spec.name = name;
    spec.title = "service store mini";
    spec.topology = "dual_clique({x})";
    spec.problem = "global(1)";
    spec.sweep = {8, 12};
    spec.trials = 3;
    spec.base_seed = 5;
    spec.max_rounds = "200*n";
    spec.columns = {
        {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
        {"robin+collider", "round_robin", "collider", ""},
    };
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("dualcast_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

JobSpec mini_job(int shard_tasks, int lease_ttl_seconds) {
  return make_job_spec({&mini_scenario()}, scenario::RunOptions{},
                       shard_tasks, lease_ttl_seconds);
}

TEST(JobStore, MetaRoundtripAndShardGeometry) {
  const std::string dir = fresh_dir("store_meta");
  const JobSpec job = mini_job(/*shard_tasks=*/5, /*lease_ttl_seconds=*/60);
  JobStore created = JobStore::create_or_attach(dir, job);
  // 2 points x 2 columns x 3 trials = 12 flat tasks, ceil(12/5) = 3 shards.
  EXPECT_EQ(created.total_tasks(), 12);
  EXPECT_EQ(created.shard_count(), 3);
  EXPECT_EQ(created.shard_range(0), (std::pair<int, int>{0, 5}));
  EXPECT_EQ(created.shard_range(2), (std::pair<int, int>{10, 12}));

  const JobStore reopened = JobStore::open(dir);
  EXPECT_EQ(reopened.spec().key, job.key);
  EXPECT_EQ(reopened.spec().catalog, job.catalog);
  EXPECT_EQ(reopened.spec().scenario_names, job.scenario_names);
  EXPECT_EQ(reopened.spec().shard_tasks, 5);
  EXPECT_EQ(reopened.spec().lease_ttl_seconds, 60);
  EXPECT_EQ(reopened.total_tasks(), 12);

  // Attaching with different execution parameters (a different job key)
  // must refuse rather than mix experiments in one directory.
  scenario::RunOptions other;
  other.trials_override = 2;
  const JobSpec different =
      make_job_spec({&mini_scenario()}, other, 5, 60);
  ASSERT_NE(different.key, job.key);
  EXPECT_THROW(JobStore::create_or_attach(dir, different), ScenarioError);
}

TEST(JobStore, RecordsRoundTripExactlyAndIgnoreTornTail) {
  const std::string dir = fresh_dir("store_records");
  JobStore store = JobStore::create_or_attach(dir, mini_job(6, 60));
  // Values chosen so decimal round-tripping would lose bits.
  const double awkward = 0.1 + 0.2;
  store.append_record(0, {0, awkward});
  store.append_record(0, {3, -1.0});
  store.append_record(0, {5, 12345678.875});

  // Simulate a crash mid-append: a torn trailing line with no newline.
  {
    std::ofstream log(fs::path(dir) / "shards" / "shard_0.log",
                      std::ios::app | std::ios::binary);
    log << "4 deadbe";
  }

  const std::vector<TaskRecord> records = store.read_shard_records(0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].task, 0);
  EXPECT_EQ(records[0].value, awkward);  // bit-exact, not approximate
  EXPECT_EQ(records[1].task, 3);
  EXPECT_EQ(records[1].value, -1.0);
  EXPECT_EQ(records[2].task, 5);
  EXPECT_EQ(records[2].value, 12345678.875);

  EXPECT_FALSE(store.shard_done(0));
  store.mark_shard_done(0);
  EXPECT_TRUE(store.shard_done(0));
  EXPECT_TRUE(JobStore::open(dir).shard_done(0));
}

TEST(JobStore, LeaseAcquireConflictRenewRelease) {
  const std::string dir = fresh_dir("store_lease");
  JobStore store = JobStore::create_or_attach(dir, mini_job(4, 60));
  EXPECT_TRUE(store.try_lease(0, "alice"));
  EXPECT_FALSE(store.try_lease(0, "bob"));   // validly held
  EXPECT_TRUE(store.try_lease(0, "alice"));  // re-entrant renew
  EXPECT_TRUE(store.try_lease(1, "bob"));    // other shards independent
  store.renew_lease(0, "alice");
  store.release_lease(0, "alice");
  EXPECT_TRUE(store.try_lease(0, "bob"));
  // Releasing a lease someone else holds is a no-op, not a steal.
  store.release_lease(0, "alice");
  EXPECT_FALSE(store.try_lease(0, "carol"));
}

TEST(JobStore, ExpiredLeaseIsStolen) {
  const std::string dir = fresh_dir("store_steal");
  // TTL 0: every lease is expired the moment it is written — the
  // crashed-worker recovery path, compressed to zero wait.
  JobStore store = JobStore::create_or_attach(dir, mini_job(4, 0));
  EXPECT_TRUE(store.try_lease(0, "crashed"));
  EXPECT_TRUE(store.try_lease(0, "recoverer"));
}

TEST(JobStore, ScanReportsWatermarksAndLeases) {
  const std::string dir = fresh_dir("store_scan");
  JobStore store = JobStore::create_or_attach(dir, mini_job(6, 60));
  store.append_record(0, {0, 1.0});
  store.append_record(0, {1, 2.0});
  store.append_record(0, {1, 2.0});  // idempotent duplicate: one distinct
  store.append_record(1, {6, 3.0});
  store.mark_shard_done(1);
  ASSERT_TRUE(store.try_lease(0, "alice"));

  const std::vector<ShardState> shards = store.scan();
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].completed, 2);
  EXPECT_FALSE(shards[0].done);
  EXPECT_TRUE(shards[0].leased);
  EXPECT_EQ(shards[0].lease_owner, "alice");
  EXPECT_EQ(shards[1].completed, 1);
  EXPECT_TRUE(shards[1].done);
  EXPECT_FALSE(shards[1].leased);
}

TEST(JobStore, OpenRejectsMissingOrCorruptMeta) {
  EXPECT_THROW(JobStore::open(fresh_dir("store_absent")), ScenarioError);
  const std::string dir = fresh_dir("store_corrupt");
  fs::create_directories(dir);
  std::ofstream(fs::path(dir) / "job.meta") << "not a job meta\n";
  EXPECT_THROW(JobStore::open(dir), ScenarioError);
}

/// Expects `body` to throw ScenarioError whose message contains `needle`
/// — corrupt job directories must produce *named* diagnostics, not a
/// generic integer-parse throw.
template <typename Body>
void expect_error_mentioning(const std::string& needle, Body body) {
  try {
    body();
    FAIL() << "expected a ScenarioError mentioning \"" << needle << "\"";
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "diagnostic was: " << error.what();
  }
}

TEST(JobStore, MetaDiagnosticsNameTheProblem) {
  // A malformed integer field names the field, not just "stoi".
  {
    const std::string dir = fresh_dir("store_meta_badint");
    fs::create_directories(dir);
    std::ofstream(fs::path(dir) / "job.meta")
        << "dualcast-job v1\nkey 0000000000000001\n"
           "catalog 0000000000000002\nshard_tasks banana\n"
           "scenario svc-test/mini\nend\n";
    expect_error_mentioning("shard_tasks", [&] { JobStore::open(dir); });
  }
  // A missing required field is reported as such.
  {
    const std::string dir = fresh_dir("store_meta_nokey");
    fs::create_directories(dir);
    std::ofstream(fs::path(dir) / "job.meta")
        << "dualcast-job v1\ncatalog 0000000000000002\n"
           "scenario svc-test/mini\nend\n";
    expect_error_mentioning("key", [&] { JobStore::open(dir); });
  }
  // A truncated file (no "end") is distinguished from an empty job.
  {
    const std::string dir = fresh_dir("store_meta_trunc");
    fs::create_directories(dir);
    std::ofstream(fs::path(dir) / "job.meta")
        << "dualcast-job v1\nkey 0000000000000001\n"
           "catalog 0000000000000002\n";
    expect_error_mentioning("truncated", [&] { JobStore::open(dir); });
  }
}

TEST(JobStore, V1RecordsRemainReadable) {
  const std::string dir = fresh_dir("store_v1");
  JobStore store = JobStore::create_or_attach(dir, mini_job(6, 60));
  const double value = 0.1 + 0.2;
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  // The PR-6 record format: "<task> <bits-hex> <decimal>", no checksum.
  std::ofstream(fs::path(dir) / "shards" / "shard_0.log", std::ios::binary)
      << "2 " << scenario::hash_hex(bits) << " 0.30000000000000004\n";
  const std::vector<TaskRecord> records = store.read_shard_records(0);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].task, 2);
  EXPECT_EQ(records[0].value, value);
}

TEST(JobStore, MidFileCorruptionIsDetectedQuarantinedAndRecovered) {
  const std::string dir = fresh_dir("store_quarantine");
  JobStore store = JobStore::create_or_attach(dir, mini_job(6, 60));
  store.append_record(0, {0, 1.5});
  store.append_record(0, {1, 2.5});
  store.append_record(0, {2, 3.5});
  store.mark_shard_done(0);

  // Flip one byte in the middle record — bit rot the checksum must catch.
  const fs::path log = fs::path(dir) / "shards" / "shard_0.log";
  std::string text;
  {
    std::ifstream in(log, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::size_t second_line = text.find('\n') + 1;
  const std::size_t flip = text.find(' ', second_line + 3) + 1;
  text[flip] = text[flip] == '0' ? '1' : '0';
  std::ofstream(log, std::ios::binary) << text;

  // Detection: the scan truncates at the watermark; the strict reader
  // (the merger's path) refuses outright.
  const ShardScan scan = store.scan_shard_log(0);
  EXPECT_TRUE(scan.corrupt);
  EXPECT_EQ(scan.bad_line, 2);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].value, 1.5);
  expect_error_mentioning("corrupt", [&] { store.read_shard_records(0); });
  EXPECT_TRUE(store.scan()[0].corrupt);

  // Recovery: damaged log moved aside, good prefix rewritten, done marker
  // cleared so the shard is recomputed from the watermark.
  EXPECT_TRUE(store.recover_shard(0).corrupt);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "shards" / "shard_0.quarantine"));
  EXPECT_FALSE(store.shard_done(0));
  const std::vector<TaskRecord> recovered = store.read_shard_records(0);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].task, 0);
  EXPECT_EQ(recovered[0].value, 1.5);
  const std::vector<ShardState> states = store.scan();
  EXPECT_FALSE(states[0].corrupt);
  EXPECT_TRUE(states[0].quarantined);
  // Recovery is idempotent: a healthy log is left alone.
  EXPECT_FALSE(store.recover_shard(0).corrupt);
  EXPECT_TRUE(store.recover_all().empty());
}

TEST(JobStore, StealRaceUnderClockSkewHasOneWinner) {
  const std::string dir = fresh_dir("store_skew_race");
  const JobSpec job = mini_job(/*shard_tasks=*/4, /*lease_ttl_seconds=*/60);
  // Plant a lease from a dead worker at t=100 (expires 160).
  util::FakeClock dead_clock(100);
  StoreEnv dead_env;
  dead_env.clock = &dead_clock;
  JobStore dead = JobStore::create_or_attach(dir, job, dead_env);
  ASSERT_TRUE(dead.try_lease(0, "dead"));

  // Two racers with skewed clocks (skew 26s < TTL 60s): the lease is
  // expired for "ahead" (161 >= 160) but still valid for "behind" (135).
  // A fresh lease taken by either racer is always valid for the other —
  // skew below the TTL is exactly the regime the lease protocol promises
  // one winner in.
  util::FakeClock ahead_clock(161);
  util::FakeClock behind_clock(135);
  StoreEnv ahead_env;
  ahead_env.clock = &ahead_clock;
  StoreEnv behind_env;
  behind_env.clock = &behind_clock;
  JobStore ahead = JobStore::open(dir, ahead_env);
  JobStore behind = JobStore::open(dir, behind_env);

  std::atomic<int> ahead_wins{0};
  std::atomic<int> behind_wins{0};
  for (int round = 0; round < 50; ++round) {
    std::atomic<bool> a_won{false};
    std::atomic<bool> b_won{false};
    std::thread a([&] { a_won = ahead.try_lease(0, "ahead"); });
    std::thread b([&] { b_won = behind.try_lease(0, "behind"); });
    a.join();
    b.join();
    // The protocol's promise under skew < TTL: EXACTLY one winner. (Which
    // one is racy in round 0 — stealing the dead lease opens an absence
    // window between unlink and link-publish, and either racer may take
    // it; that is legitimate. Two winners never are.)
    EXPECT_NE(a_won.load(), b_won.load()) << "round " << round;
    if (a_won) ahead_wins.fetch_add(1);
    if (b_won) behind_wins.fetch_add(1);
  }
  // Ownership is sticky: round 0's winner renews its own lease every
  // round after, and its lease is never expired for the other racer.
  EXPECT_EQ(ahead_wins.load() + behind_wins.load(), 50);
  EXPECT_TRUE(ahead_wins.load() == 50 || behind_wins.load() == 50)
      << "ownership flapped: ahead " << ahead_wins.load() << ", behind "
      << behind_wins.load();

  // No double-execution either: run both skewed workers concurrently over
  // the whole job; every task is measured exactly once (leases held by
  // one are valid to the other, so nobody steals live work).
  if (ahead_wins.load() == 50) {
    ahead.release_lease(0, "ahead");
  } else {
    behind.release_lease(0, "behind");
  }
  const JobRuntime runtime(ahead);
  const std::uint64_t trials_before = trials_executed();
  std::thread wa([&] {
    WorkerOptions options;
    options.owner = "ahead";
    run_worker(ahead, runtime, options);
  });
  std::thread wb([&] {
    WorkerOptions options;
    options.owner = "behind";
    run_worker(behind, runtime, options);
  });
  wa.join();
  wb.join();
  EXPECT_EQ(trials_executed() - trials_before,
            static_cast<std::uint64_t>(ahead.total_tasks()));
  JobRuntime merge_runtime(ahead);
  EXPECT_EQ(merge_job(ahead, merge_runtime, nullptr).size(), 4u);
}

TEST(JobStore, TryLeaseReportsStealsDistinctly) {
  const std::string dir = fresh_dir("store_steal_flag");
  // TTL 0: foreign leases are instantly expired, so every takeover of a
  // foreign lease is observable as a steal.
  JobStore store = JobStore::create_or_attach(dir, mini_job(4, 0));
  bool stole = true;
  EXPECT_TRUE(store.try_lease(0, "alice", &stole));
  EXPECT_FALSE(stole) << "fresh acquisition is not a steal";
  EXPECT_TRUE(store.try_lease(0, "alice", &stole));
  EXPECT_FALSE(stole) << "re-entrant renewal is not a steal";
  EXPECT_TRUE(store.try_lease(0, "bob", &stole));
  EXPECT_TRUE(stole) << "evicting an expired foreign lease is THE steal";
  store.release_lease(0, "bob");
  stole = true;
  EXPECT_TRUE(store.try_lease(0, "carol", &stole));
  EXPECT_FALSE(stole) << "acquiring after a clean release is not a steal";
}

TEST(JobStore, ScanClassifiesLeaseAgeAndStalenessAgainstStoreClock) {
  const std::string dir = fresh_dir("store_scan_age");
  util::FakeClock clock(200);
  StoreEnv env;
  env.clock = &clock;
  JobStore store = JobStore::create_or_attach(dir, mini_job(4, 30), env);
  ASSERT_TRUE(store.try_lease(0, "ager"));

  std::vector<ShardState> shards = store.scan();
  EXPECT_EQ(shards[0].lease_age, 0);
  EXPECT_FALSE(shards[0].lease_stale);
  EXPECT_EQ(shards[1].lease_age, -1) << "unleased shards have no age";
  EXPECT_FALSE(shards[1].lease_stale);

  clock.advance(10);
  shards = store.scan();
  EXPECT_EQ(shards[0].lease_age, 10);
  EXPECT_FALSE(shards[0].lease_stale);

  clock.advance(25);  // t=235 >= expiry 230: stale, age keeps counting
  shards = store.scan();
  EXPECT_EQ(shards[0].lease_age, 35);
  EXPECT_TRUE(shards[0].lease_stale);
}

TEST(JobStore, QuarantineIsGcedOnlyAfterVerifiedRecompute) {
  const std::string dir = fresh_dir("store_gc_quarantine");
  // shard_tasks=3: shard 0 is exactly tasks {0,1,2}, so the three appends
  // below cover it and "verified complete" is reachable.
  JobStore store = JobStore::create_or_attach(dir, mini_job(3, 60));
  store.append_record(0, {0, 1.5});
  store.append_record(0, {1, 2.5});
  store.append_record(0, {2, 3.5});
  const fs::path log = fs::path(dir) / "shards" / "shard_0.log";
  std::string text;
  {
    std::ifstream in(log, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::size_t second_line = text.find('\n') + 1;
  const std::size_t flip = text.find(' ', second_line + 3) + 1;
  text[flip] = text[flip] == '0' ? '1' : '0';
  std::ofstream(log, std::ios::binary) << text;
  store.recover_shard(0);
  const fs::path quarantine =
      fs::path(dir) / "shards" / "shard_0.quarantine";
  ASSERT_TRUE(fs::exists(quarantine));

  // The shard is incomplete (records 1 and 2 lost to the rot): the
  // quarantine is still the only evidence and must not be collected.
  EXPECT_FALSE(store.shard_verified_complete(0));
  EXPECT_FALSE(store.gc_quarantine(0));
  EXPECT_EQ(store.gc_quarantines(), 0);
  EXPECT_TRUE(fs::exists(quarantine));

  // Recompute the lost records; once the live log passes CRC verification
  // and covers the shard, the quarantine is superseded and collected.
  store.append_record(0, {1, 2.5});
  store.append_record(0, {2, 3.5});
  EXPECT_TRUE(store.shard_verified_complete(0));
  EXPECT_TRUE(store.gc_quarantine(0));
  EXPECT_FALSE(fs::exists(quarantine));
  EXPECT_FALSE(store.gc_quarantine(0)) << "second collection is a no-op";
}

TEST(JobStore, GcExpiredLeasesNeverTouchesLiveOrUnattributedWork) {
  const std::string dir = fresh_dir("store_gc_leases");
  util::FakeClock clock(300);
  StoreEnv env;
  env.clock = &clock;
  JobStore store = JobStore::create_or_attach(dir, mini_job(4, 30), env);
  ASSERT_TRUE(store.try_lease(0, "dead-daemon"));
  ASSERT_TRUE(store.try_lease(1, "quiet-worker"));

  // Unexpired leases survive gc even when their owner is known-stale:
  // expiry is the sole safety mechanism, membership only a hint.
  EXPECT_EQ(store.gc_expired_leases({"dead-daemon"}), 0);
  ASSERT_EQ(store.scan_leases().size(), 2u);

  clock.advance(40);  // both leases expired
  // Expired + unattributed + shard not done: left for claim-time stealing
  // (a plain worker with no membership may be mid-recovery on it).
  EXPECT_EQ(store.gc_expired_leases({}), 0);
  ASSERT_EQ(store.scan_leases().size(), 2u);
  // Expired + stale owner: reclaimed. The quiet worker's lease stays.
  EXPECT_EQ(store.gc_expired_leases({"dead-daemon"}), 1);
  const std::vector<LeaseState> left = store.scan_leases();
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].owner, "quiet-worker");
  EXPECT_TRUE(left[0].expired);
}

}  // namespace
}  // namespace dualcast::service
