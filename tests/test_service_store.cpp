// JobStore mechanics: meta roundtrip, shard geometry, fsync'd completion
// records (exact double bit patterns, torn-line tolerance), done markers,
// and lease acquire/conflict/renew/release/steal semantics.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "service/job_store.hpp"

namespace dualcast::service {
namespace {

namespace fs = std::filesystem;
using scenario::ScenarioError;
using scenario::ScenarioSpec;

const ScenarioSpec& mini_scenario() {
  static const std::string name = "svc-test/mini";
  if (!scenario::scenarios().contains(name)) {
    ScenarioSpec spec;
    spec.name = name;
    spec.title = "service store mini";
    spec.topology = "dual_clique({x})";
    spec.problem = "global(1)";
    spec.sweep = {8, 12};
    spec.trials = 3;
    spec.base_seed = 5;
    spec.max_rounds = "200*n";
    spec.columns = {
        {"decay+iid", "decay_global(permuted,persistent)", "iid(0.5)", ""},
        {"robin+collider", "round_robin", "collider", ""},
    };
    scenario::scenarios().add(spec);
  }
  return scenario::scenarios().get(name);
}

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("dualcast_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

JobSpec mini_job(int shard_tasks, int lease_ttl_seconds) {
  return make_job_spec({&mini_scenario()}, scenario::RunOptions{},
                       shard_tasks, lease_ttl_seconds);
}

TEST(JobStore, MetaRoundtripAndShardGeometry) {
  const std::string dir = fresh_dir("store_meta");
  const JobSpec job = mini_job(/*shard_tasks=*/5, /*lease_ttl_seconds=*/60);
  JobStore created = JobStore::create_or_attach(dir, job);
  // 2 points x 2 columns x 3 trials = 12 flat tasks, ceil(12/5) = 3 shards.
  EXPECT_EQ(created.total_tasks(), 12);
  EXPECT_EQ(created.shard_count(), 3);
  EXPECT_EQ(created.shard_range(0), (std::pair<int, int>{0, 5}));
  EXPECT_EQ(created.shard_range(2), (std::pair<int, int>{10, 12}));

  const JobStore reopened = JobStore::open(dir);
  EXPECT_EQ(reopened.spec().key, job.key);
  EXPECT_EQ(reopened.spec().catalog, job.catalog);
  EXPECT_EQ(reopened.spec().scenario_names, job.scenario_names);
  EXPECT_EQ(reopened.spec().shard_tasks, 5);
  EXPECT_EQ(reopened.spec().lease_ttl_seconds, 60);
  EXPECT_EQ(reopened.total_tasks(), 12);

  // Attaching with different execution parameters (a different job key)
  // must refuse rather than mix experiments in one directory.
  scenario::RunOptions other;
  other.trials_override = 2;
  const JobSpec different =
      make_job_spec({&mini_scenario()}, other, 5, 60);
  ASSERT_NE(different.key, job.key);
  EXPECT_THROW(JobStore::create_or_attach(dir, different), ScenarioError);
}

TEST(JobStore, RecordsRoundTripExactlyAndIgnoreTornTail) {
  const std::string dir = fresh_dir("store_records");
  JobStore store = JobStore::create_or_attach(dir, mini_job(6, 60));
  // Values chosen so decimal round-tripping would lose bits.
  const double awkward = 0.1 + 0.2;
  store.append_record(0, {0, awkward});
  store.append_record(0, {3, -1.0});
  store.append_record(0, {5, 12345678.875});

  // Simulate a crash mid-append: a torn trailing line with no newline.
  {
    std::ofstream log(fs::path(dir) / "shards" / "shard_0.log",
                      std::ios::app | std::ios::binary);
    log << "4 deadbe";
  }

  const std::vector<TaskRecord> records = store.read_shard_records(0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].task, 0);
  EXPECT_EQ(records[0].value, awkward);  // bit-exact, not approximate
  EXPECT_EQ(records[1].task, 3);
  EXPECT_EQ(records[1].value, -1.0);
  EXPECT_EQ(records[2].task, 5);
  EXPECT_EQ(records[2].value, 12345678.875);

  EXPECT_FALSE(store.shard_done(0));
  store.mark_shard_done(0);
  EXPECT_TRUE(store.shard_done(0));
  EXPECT_TRUE(JobStore::open(dir).shard_done(0));
}

TEST(JobStore, LeaseAcquireConflictRenewRelease) {
  const std::string dir = fresh_dir("store_lease");
  JobStore store = JobStore::create_or_attach(dir, mini_job(4, 60));
  EXPECT_TRUE(store.try_lease(0, "alice"));
  EXPECT_FALSE(store.try_lease(0, "bob"));   // validly held
  EXPECT_TRUE(store.try_lease(0, "alice"));  // re-entrant renew
  EXPECT_TRUE(store.try_lease(1, "bob"));    // other shards independent
  store.renew_lease(0, "alice");
  store.release_lease(0, "alice");
  EXPECT_TRUE(store.try_lease(0, "bob"));
  // Releasing a lease someone else holds is a no-op, not a steal.
  store.release_lease(0, "alice");
  EXPECT_FALSE(store.try_lease(0, "carol"));
}

TEST(JobStore, ExpiredLeaseIsStolen) {
  const std::string dir = fresh_dir("store_steal");
  // TTL 0: every lease is expired the moment it is written — the
  // crashed-worker recovery path, compressed to zero wait.
  JobStore store = JobStore::create_or_attach(dir, mini_job(4, 0));
  EXPECT_TRUE(store.try_lease(0, "crashed"));
  EXPECT_TRUE(store.try_lease(0, "recoverer"));
}

TEST(JobStore, ScanReportsWatermarksAndLeases) {
  const std::string dir = fresh_dir("store_scan");
  JobStore store = JobStore::create_or_attach(dir, mini_job(6, 60));
  store.append_record(0, {0, 1.0});
  store.append_record(0, {1, 2.0});
  store.append_record(0, {1, 2.0});  // idempotent duplicate: one distinct
  store.append_record(1, {6, 3.0});
  store.mark_shard_done(1);
  ASSERT_TRUE(store.try_lease(0, "alice"));

  const std::vector<ShardState> shards = store.scan();
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].completed, 2);
  EXPECT_FALSE(shards[0].done);
  EXPECT_TRUE(shards[0].leased);
  EXPECT_EQ(shards[0].lease_owner, "alice");
  EXPECT_EQ(shards[1].completed, 1);
  EXPECT_TRUE(shards[1].done);
  EXPECT_FALSE(shards[1].leased);
}

TEST(JobStore, OpenRejectsMissingOrCorruptMeta) {
  EXPECT_THROW(JobStore::open(fresh_dir("store_absent")), ScenarioError);
  const std::string dir = fresh_dir("store_corrupt");
  fs::create_directories(dir);
  std::ofstream(fs::path(dir) / "job.meta") << "not a job meta\n";
  EXPECT_THROW(JobStore::open(dir), ScenarioError);
}

}  // namespace
}  // namespace dualcast::service
