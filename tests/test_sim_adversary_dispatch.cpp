// Information-access enforcement: the engine must invoke exactly the hook
// matching the adversary's declared class, with online adaptive choices made
// *before* the round's coins are drawn, and offline adaptive ones after.

#include <gtest/gtest.h>

#include "adversary/dense_sparse.hpp"
#include "adversary/offline_collider.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"
#include "util/assert.hpp"

namespace dualcast {
namespace {

using testing::scripted_factory;

struct HookLog {
  int oblivious = 0;
  int online = 0;
  int offline = 0;
};

class ProbeAdversary final : public LinkProcess {
 public:
  ProbeAdversary(AdversaryClass cls, HookLog* log) : cls_(cls), log_(log) {}

  AdversaryClass adversary_class() const override { return cls_; }

  void choose_oblivious(int /*round*/, Rng& /*rng*/, EdgeSet& out) override {
    ++log_->oblivious;
    out.set_none();
  }
  void choose_online(int /*round*/, const ExecutionHistory& history,
                     const StateInspector& /*inspector*/, Rng& /*rng*/,
                     EdgeSet& out) override {
    ++log_->online;
    history_rounds_seen_ = history.rounds();
    out.set_none();
  }
  void choose_offline(int /*round*/, const ExecutionHistory& /*history*/,
                      const StateInspector& /*inspector*/,
                      const RoundActions& actions, Rng& /*rng*/,
                      EdgeSet& out) override {
    ++log_->offline;
    last_seen_transmitters_ = *actions.transmitters;
    out.set_none();
  }

  int history_rounds_seen_ = -1;
  std::vector<int> last_seen_transmitters_;

 private:
  AdversaryClass cls_;
  HookLog* log_;
};

std::shared_ptr<Problem> assign(int n) {
  return std::make_shared<AssignmentProblem>(n, -1, std::vector<int>{});
}

TEST(Dispatch, ObliviousOnlyGetsObliviousHook) {
  const DualGraph net = DualGraph::protocol(line_graph(3));
  HookLog log;
  Execution exec(net, scripted_factory({{1, 0}, {0, 1}, {0, 0}}), assign(3),
                 std::make_unique<ProbeAdversary>(AdversaryClass::oblivious,
                                                  &log),
                 {1, 2, {}});
  exec.run();
  EXPECT_EQ(log.oblivious, 2);
  EXPECT_EQ(log.online, 0);
  EXPECT_EQ(log.offline, 0);
}

TEST(Dispatch, OnlineOnlyGetsOnlineHook) {
  const DualGraph net = DualGraph::protocol(line_graph(3));
  HookLog log;
  Execution exec(net, scripted_factory({{1, 0}, {0, 1}, {0, 0}}), assign(3),
                 std::make_unique<ProbeAdversary>(
                     AdversaryClass::online_adaptive, &log),
                 {1, 2, {}});
  exec.run();
  EXPECT_EQ(log.oblivious, 0);
  EXPECT_EQ(log.online, 2);
  EXPECT_EQ(log.offline, 0);
}

TEST(Dispatch, OfflineOnlyGetsOfflineHook) {
  const DualGraph net = DualGraph::protocol(line_graph(3));
  HookLog log;
  Execution exec(net, scripted_factory({{1, 0}, {0, 1}, {0, 0}}), assign(3),
                 std::make_unique<ProbeAdversary>(
                     AdversaryClass::offline_adaptive, &log),
                 {1, 2, {}});
  exec.run();
  EXPECT_EQ(log.offline, 2);
  EXPECT_EQ(log.online, 0);
  EXPECT_EQ(log.oblivious, 0);
}

TEST(Dispatch, OnlineSeesHistoryOnlyThroughPreviousRound) {
  const DualGraph net = DualGraph::protocol(line_graph(3));
  HookLog log;
  auto probe = std::make_unique<ProbeAdversary>(AdversaryClass::online_adaptive,
                                                &log);
  auto* probe_ptr = probe.get();
  Execution exec(net, scripted_factory({{1, 0, 1}, {0, 0, 0}, {0, 0, 0}}),
                 assign(3), std::move(probe), {1, 3, {}});
  exec.step();
  EXPECT_EQ(probe_ptr->history_rounds_seen_, 0);  // round 0: empty history
  exec.step();
  EXPECT_EQ(probe_ptr->history_rounds_seen_, 1);  // round 1: one round back
  exec.step();
  EXPECT_EQ(probe_ptr->history_rounds_seen_, 2);
}

TEST(Dispatch, OfflineSeesTheRoundsActualTransmitters) {
  const DualGraph net = DualGraph::protocol(line_graph(3));
  HookLog log;
  auto probe = std::make_unique<ProbeAdversary>(
      AdversaryClass::offline_adaptive, &log);
  auto* probe_ptr = probe.get();
  Execution exec(net, scripted_factory({{1}, {0}, {1}}), assign(3),
                 std::move(probe), {1, 1, {}});
  exec.step();
  EXPECT_EQ(probe_ptr->last_seen_transmitters_, (std::vector<int>{0, 2}));
}

TEST(Dispatch, BaseHooksThrowIfNotOverridden) {
  // An adversary claiming a class but not implementing its hook is a bug;
  // the base class traps it.
  class Lazy final : public LinkProcess {
   public:
    AdversaryClass adversary_class() const override {
      return AdversaryClass::oblivious;
    }
  };
  const DualGraph net = DualGraph::protocol(line_graph(2));
  Execution exec(net, scripted_factory({{1}, {0}}), assign(2),
                 std::make_unique<Lazy>(), {1, 1, {}});
  EXPECT_THROW(exec.step(), ContractViolation);
}

TEST(Dispatch, InspectorReflectsPreRoundState) {
  // The dense/sparse adversary conditions on E[|X| | S] *before* coins are
  // drawn. With scripted (deterministic) processes the expectation equals
  // the actual transmitter count, evaluated for the same round.
  const DualGraph net = DualGraph::protocol(complete_graph(4));
  auto adversary = std::make_unique<DenseSparseOnline>(
      DenseSparseConfig{/*threshold_factor=*/0.5});
  auto* adv = adversary.get();
  // Round 0: three transmitters (dense: 3 > 0.5*log2(4)=1). Round 1: one
  // (sparse).
  Execution exec(net, scripted_factory({{1, 1}, {1, 0}, {1, 0}, {0, 0}}),
                 assign(4), std::move(adversary), {1, 2, {}});
  exec.run();
  ASSERT_EQ(adv->labels().size(), 2u);
  EXPECT_EQ(adv->labels()[0], 1);
  EXPECT_EQ(adv->labels()[1], 0);
}

TEST(Dispatch, GreedyColliderFloodsOnlyMultiTransmitterRounds) {
  Graph g = line_graph(3);
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  Execution exec(net, scripted_factory({{1, 1}, {0, 1}, {0, 0}}), assign(3),
                 std::make_unique<GreedyColliderOffline>(), {1, 2, {}});
  exec.run();
  EXPECT_EQ(exec.history().round(0).activated, EdgeSet::Kind::none);
  EXPECT_EQ(exec.history().round(1).activated, EdgeSet::Kind::all);
}

}  // namespace
}  // namespace dualcast
