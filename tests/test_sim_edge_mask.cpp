// Mask-native EdgeSet: an adversary that selects edges through the
// EdgeSet::some() index-vector compatibility constructor and one that
// writes mask words directly must produce byte-identical executions, in
// every adversary class; the i.i.d. adversary's mask output must match an
// index-vector reimplementation of its exact sampling loop; and implicit
// dual cliques must replay explicit ones bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/static_adversaries.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"

namespace dualcast {
namespace {

using testing::scripted_factory;

/// Deterministic per-round index selection over `m` edges (shared by the
/// index-style and mask-style adversaries below so their choices agree).
std::vector<std::int32_t> pick_indices(int round, std::int64_t m, int salt) {
  std::vector<std::int32_t> out;
  for (std::int64_t e = 0; e < m; ++e) {
    if ((e + round + salt) % 3 == 0) out.push_back(static_cast<std::int32_t>(e));
  }
  return out;
}

/// One adversary per (class, style): style 0 routes through
/// EdgeSet::some(), style 1 fills the mask in place.
class StyledAdversary final : public LinkProcess {
 public:
  StyledAdversary(AdversaryClass cls, bool mask_style)
      : cls_(cls), mask_style_(mask_style) {}

  AdversaryClass adversary_class() const override { return cls_; }
  bool needs_history() const override { return false; }

  void on_execution_start(const ExecutionSetup& setup, Rng& /*rng*/) override {
    m_ = setup.net->gp_only_edge_count();
  }

  void choose_oblivious(int round, Rng& /*rng*/, EdgeSet& out) override {
    fill(round, /*salt=*/0, out);
  }
  void choose_online(int round, const ExecutionHistory& /*history*/,
                     const StateInspector& /*inspector*/, Rng& /*rng*/,
                     EdgeSet& out) override {
    fill(round, /*salt=*/1, out);
  }
  void choose_offline(int round, const ExecutionHistory& /*history*/,
                      const StateInspector& /*inspector*/,
                      const RoundActions& actions, Rng& /*rng*/,
                      EdgeSet& out) override {
    fill(round, /*salt=*/static_cast<int>(actions.transmitters->size()), out);
  }

 private:
  void fill(int round, int salt, EdgeSet& out) {
    const std::vector<std::int32_t> indices = pick_indices(round, m_, salt);
    if (mask_style_) {
      out.begin_mask(m_);
      for (const std::int32_t idx : indices) out.set_bit(idx);
      out.finish_mask();
    } else {
      out = EdgeSet::some(indices);
    }
  }

  AdversaryClass cls_;
  bool mask_style_;
  std::int64_t m_ = 0;
};

/// The masks may differ in trailing zero words (some() sizes to the highest
/// set bit, begin_mask to the full edge space); everything else must be
/// exactly equal.
void expect_records_identical(const ExecutionHistory& a,
                              const ExecutionHistory& b) {
  ASSERT_EQ(a.rounds(), b.rounds());
  const auto canonical_mask = [](const RoundRecord& rec) {
    std::vector<std::uint64_t> words = rec.activated_mask;
    while (!words.empty() && words.back() == 0) words.pop_back();
    return words;
  };
  for (int r = 0; r < a.rounds(); ++r) {
    const RoundRecord& ra = a.round(r);
    const RoundRecord& rb = b.round(r);
    ASSERT_EQ(ra.transmitters, rb.transmitters) << "round " << r;
    ASSERT_EQ(ra.activated, rb.activated) << "round " << r;
    ASSERT_EQ(ra.activated_count, rb.activated_count) << "round " << r;
    ASSERT_EQ(canonical_mask(ra), canonical_mask(rb)) << "round " << r;
    ASSERT_EQ(ra.deliveries.size(), rb.deliveries.size()) << "round " << r;
    for (std::size_t d = 0; d < ra.deliveries.size(); ++d) {
      ASSERT_EQ(ra.deliveries[d].receiver, rb.deliveries[d].receiver);
      ASSERT_EQ(ra.deliveries[d].sender, rb.deliveries[d].sender);
      ASSERT_EQ(ra.deliveries[d].transmitter_index,
                rb.deliveries[d].transmitter_index);
    }
  }
}

DualGraph chordal_net(int n, std::uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.finalize();
  Graph gp = g;
  for (int e = 0; e < 3 * n; ++e) {
    const int u = static_cast<int>(rng.uniform_int(0, n - 1));
    const int v = static_cast<int>(rng.uniform_int(0, n - 1));
    if (u != v) gp.add_edge(u, v);
  }
  gp.finalize();
  Graph g2 = g;
  return DualGraph(std::move(g2), std::move(gp));
}

ExecutionHistory run_styled(const DualGraph& net, AdversaryClass cls,
                            bool mask_style) {
  std::vector<std::vector<char>> scripts(static_cast<std::size_t>(net.n()));
  Rng rng(17);
  for (auto& script : scripts) {
    script.resize(30);
    for (auto& bit : script) bit = rng.bernoulli(0.3) ? 1 : 0;
  }
  Execution exec(
      net, scripted_factory(scripts),
      std::make_shared<AssignmentProblem>(net.n(), -1, std::vector<int>{}),
      std::make_unique<StyledAdversary>(cls, mask_style),
      ExecutionConfig{}.with_seed(23).with_max_rounds(30));
  exec.run();
  return exec.history();
}

TEST(EdgeMaskDifferential, MaskAndIndexStylesAreByteIdenticalPerClass) {
  const DualGraph net = chordal_net(24, 11);
  ASSERT_GT(net.gp_only_edge_count(), 0);
  for (const AdversaryClass cls :
       {AdversaryClass::oblivious, AdversaryClass::online_adaptive,
        AdversaryClass::offline_adaptive}) {
    const ExecutionHistory via_indices = run_styled(net, cls, false);
    const ExecutionHistory via_mask = run_styled(net, cls, true);
    expect_records_identical(via_indices, via_mask);
    EXPECT_GT(via_indices.total_deliveries(), 0)
        << "vacuous differential for class " << to_string(cls);
  }
}

// ---------------------------------------------------------------------------
// The i.i.d. adversary: mask output == the old index expansion, draw for
// draw.
// ---------------------------------------------------------------------------

/// The pre-mask RandomIidEdges: identical word-parallel sampling loop, but
/// expanding the present words to an index vector (what the engine consumed
/// before masks). Kept here as the reference for the representation change.
class IndexIidEdges final : public LinkProcess {
 public:
  explicit IndexIidEdges(double p) : p_(p) {
    double frac = p;
    while (frac > 0.0 && frac < 1.0) {
      frac *= 2.0;
      const bool bit = frac >= 1.0;
      if (bit) frac -= 1.0;
      p_bits_.push_back(bit ? 1 : 0);
    }
  }
  AdversaryClass adversary_class() const override {
    return AdversaryClass::oblivious;
  }
  void on_execution_start(const ExecutionSetup& setup, Rng& /*rng*/) override {
    m_ = setup.net->gp_only_edge_count();
  }
  void choose_oblivious(int /*round*/, Rng& rng, EdgeSet& out) override {
    std::vector<std::int32_t> selected;
    for (std::int64_t base = 0; base < m_; base += 64) {
      const int lanes =
          static_cast<int>(std::min<std::int64_t>(64, m_ - base));
      std::uint64_t undecided =
          lanes == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
      std::uint64_t present = 0;
      for (const std::uint8_t bit : p_bits_) {
        if (undecided == 0) break;
        const std::uint64_t r = rng.next_u64();
        if (bit) {
          present |= undecided & ~r;
          undecided &= r;
        } else {
          undecided &= ~r;
        }
      }
      while (present != 0) {
        const int j = std::countr_zero(present);
        selected.push_back(static_cast<std::int32_t>(base + j));
        present &= present - 1;
      }
    }
    out = EdgeSet::some(selected);
  }

 private:
  double p_;
  std::int64_t m_ = 0;
  std::vector<std::uint8_t> p_bits_;
};

TEST(EdgeMaskDifferential, IidMaskMatchesIndexExpansionByteForByte) {
  const DualGraph net = chordal_net(40, 29);
  std::vector<std::vector<char>> scripts(40);
  Rng rng(4);
  for (auto& script : scripts) {
    script.resize(40);
    for (auto& bit : script) bit = rng.bernoulli(0.3) ? 1 : 0;
  }
  const auto run = [&](std::unique_ptr<LinkProcess> adversary) {
    Execution exec(
        net, scripted_factory(scripts),
        std::make_shared<AssignmentProblem>(40, -1, std::vector<int>{}),
        std::move(adversary), ExecutionConfig{}.with_seed(9).with_max_rounds(40));
    exec.run();
    return exec.history();
  };
  const ExecutionHistory mask_run =
      run(std::make_unique<RandomIidEdges>(0.35));
  const ExecutionHistory index_run =
      run(std::make_unique<IndexIidEdges>(0.35));
  expect_records_identical(index_run, mask_run);
}

TEST(EdgeMaskDifferential, IidEmptyRoundCollapsesToNone) {
  // p small enough that some rounds select nothing: those rounds must be
  // recorded as Kind::none (the empty-mask normalization), never as an
  // all-zero mask.
  const DualGraph net = chordal_net(12, 3);
  std::vector<std::vector<char>> scripts(12);
  for (auto& script : scripts) script.assign(60, 1);
  Execution exec(
      net, scripted_factory(scripts),
      std::make_shared<AssignmentProblem>(12, -1, std::vector<int>{}),
      std::make_unique<RandomIidEdges>(0.01),
      ExecutionConfig{}.with_seed(2).with_max_rounds(60));
  exec.run();
  int none_rounds = 0;
  for (int r = 0; r < exec.history().rounds(); ++r) {
    const RoundRecord& rec = exec.history().round(r);
    if (rec.activated == EdgeSet::Kind::none) {
      EXPECT_TRUE(rec.activated_mask.empty());
      EXPECT_EQ(rec.activated_count, 0);
      ++none_rounds;
    } else {
      EXPECT_EQ(rec.activated, EdgeSet::Kind::mask);
      EXPECT_GT(rec.activated_count, 0);
    }
  }
  EXPECT_GT(none_rounds, 0) << "p=0.01 never produced an empty round";
}

// ---------------------------------------------------------------------------
// Implicit vs explicit dual clique: identical executions.
// ---------------------------------------------------------------------------

TEST(EdgeMaskDifferential, ImplicitDualCliqueReplaysExplicitByteForByte) {
  // Same network in both representations; same seed; every record equal —
  // the representation is invisible to the execution.
  const int n = 64;
  Graph g(n);
  for (int u = 0; u < n / 2; ++u) {
    for (int v = u + 1; v < n / 2; ++v) {
      g.add_edge(u, v);
      g.add_edge(n / 2 + u, n / 2 + v);
    }
  }
  g.add_edge(5, n / 2 + 5);
  g.finalize();
  const DualGraph expl(std::move(g), complete_graph(n));
  const DualGraph impl = DualGraph::implicit_dual_clique(n, 5);

  std::vector<std::vector<char>> scripts(static_cast<std::size_t>(n));
  Rng rng(31);
  for (auto& script : scripts) {
    script.resize(50);
    for (auto& bit : script) bit = rng.bernoulli(0.25) ? 1 : 0;
  }
  const auto run = [&](const DualGraph& net) {
    Execution exec(
        net, scripted_factory(scripts),
        std::make_shared<AssignmentProblem>(n, -1, std::vector<int>{}),
        std::make_unique<RandomIidEdges>(0.2),
        ExecutionConfig{}.with_seed(13).with_max_rounds(50));
    exec.run();
    return exec.history();
  };
  const ExecutionHistory explicit_run = run(expl);
  const ExecutionHistory implicit_run = run(impl);
  expect_records_identical(explicit_run, implicit_run);
  EXPECT_GT(explicit_run.total_deliveries(), 0);
}

}  // namespace
}  // namespace dualcast
