// Engine semantics: the §2 receive rule, half-duplex, adversarial edge
// activation, the complete-topology fast path, and deterministic replay.

#include <gtest/gtest.h>

#include <set>

#include "adversary/static_adversaries.hpp"
#include "core/factories.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"
#include "util/assert.hpp"

namespace dualcast {
namespace {

using testing::ScriptedProcess;
using testing::scripted_factory;

/// Builds a line dual graph 0-1-2 with one G'-only edge (0,2).
DualGraph line3_with_chord() {
  Graph g = line_graph(3);
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.finalize();
  return DualGraph(std::move(g), std::move(gp));
}

std::shared_ptr<Problem> assign(int n) {
  return std::make_shared<AssignmentProblem>(n, -1, std::vector<int>{});
}

TEST(Engine, SingleTransmitterDeliversToGNeighbors) {
  const DualGraph net = DualGraph::protocol(line_graph(3));
  // Node 0 transmits in round 0; everyone else listens.
  Execution exec(net, scripted_factory({{1}, {0}, {0}}), assign(3),
                 std::make_unique<NoExtraEdges>(), {1, 10, {}});
  exec.step();
  const auto& rec = exec.history().round(0);
  ASSERT_EQ(rec.deliveries.size(), 1u);
  EXPECT_EQ(rec.deliveries[0].receiver, 1);
  EXPECT_EQ(rec.deliveries[0].sender, 0);
}

TEST(Engine, TwoTransmittersCollideAtCommonNeighbor) {
  const DualGraph net = DualGraph::protocol(line_graph(3));
  // Nodes 0 and 2 transmit; node 1 neighbors both -> collision, no delivery.
  Execution exec(net, scripted_factory({{1}, {0}, {1}}), assign(3),
                 std::make_unique<NoExtraEdges>(), {1, 10, {}});
  exec.step();
  EXPECT_TRUE(exec.history().round(0).deliveries.empty());
}

TEST(Engine, CollisionIsLocalNotGlobal) {
  // Path 0-1-2-3-4: transmitters 0 and 4. Node 1 hears only 0; node 3 hears
  // only 4: both receive despite two global transmitters. Node 2 hears
  // nobody (neighbors 1,3 silent).
  const DualGraph net = DualGraph::protocol(line_graph(5));
  Execution exec(net, scripted_factory({{1}, {0}, {0}, {0}, {1}}), assign(5),
                 std::make_unique<NoExtraEdges>(), {1, 10, {}});
  exec.step();
  const auto& deliveries = exec.history().round(0).deliveries;
  ASSERT_EQ(deliveries.size(), 2u);
}

TEST(Engine, TransmitterCannotReceive) {
  // 0 and 1 adjacent, both transmit: neither receives (half-duplex).
  const DualGraph net = DualGraph::protocol(line_graph(2));
  Execution exec(net, scripted_factory({{1}, {1}}), assign(2),
                 std::make_unique<NoExtraEdges>(), {1, 10, {}});
  exec.step();
  EXPECT_TRUE(exec.history().round(0).deliveries.empty());
}

TEST(Engine, GPrimeOnlyEdgeInactiveByDefault) {
  const DualGraph net = line3_with_chord();
  // 0 transmits; without the chord active, only 1 receives.
  Execution exec(net, scripted_factory({{1}, {0}, {0}}), assign(3),
                 std::make_unique<NoExtraEdges>(), {1, 10, {}});
  exec.step();
  const auto& deliveries = exec.history().round(0).deliveries;
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].receiver, 1);
}

TEST(Engine, ActivatedGPrimeEdgeDelivers) {
  const DualGraph net = line3_with_chord();
  Execution exec(net, scripted_factory({{1}, {0}, {0}}), assign(3),
                 std::make_unique<AllExtraEdges>(), {1, 10, {}});
  exec.step();
  // Now node 2 also hears node 0 over the activated chord.
  EXPECT_EQ(exec.history().round(0).deliveries.size(), 2u);
}

TEST(Engine, ActivatedGPrimeEdgeCanCauseCollision) {
  const DualGraph net = line3_with_chord();
  // 0 and 1 transmit. Without the chord, 2 hears only 1 -> delivery. With the
  // chord active, 2 hears both -> collision.
  {
    Execution exec(net, scripted_factory({{1}, {1}, {0}}), assign(3),
                   std::make_unique<NoExtraEdges>(), {1, 10, {}});
    exec.step();
    ASSERT_EQ(exec.history().round(0).deliveries.size(), 1u);
    EXPECT_EQ(exec.history().round(0).deliveries[0].receiver, 2);
  }
  {
    Execution exec(net, scripted_factory({{1}, {1}, {0}}), assign(3),
                   std::make_unique<AllExtraEdges>(), {1, 10, {}});
    exec.step();
    EXPECT_TRUE(exec.history().round(0).deliveries.empty());
  }
}

/// Oblivious adversary activating an explicit set of edge indices.
class SelectedEdges final : public LinkProcess {
 public:
  explicit SelectedEdges(std::vector<std::int32_t> indices)
      : indices_(std::move(indices)) {}
  AdversaryClass adversary_class() const override {
    return AdversaryClass::oblivious;
  }
  void choose_oblivious(int /*round*/, Rng& /*rng*/, EdgeSet& out) override {
    out = EdgeSet::some(indices_);
  }

 private:
  std::vector<std::int32_t> indices_;
};

TEST(Engine, SelectiveEdgeActivation) {
  // Star-of-chords: G is a line 0-1-2-3; G' adds (0,2) and (0,3).
  Graph g = line_graph(4);
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.add_edge(0, 3);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  ASSERT_EQ(net.gp_only_edges().size(), 2u);
  // Find the index of (0,3).
  std::int32_t idx03 = -1;
  for (std::size_t i = 0; i < net.gp_only_edges().size(); ++i) {
    if (net.gp_only_edges()[i] == std::make_pair(0, 3)) {
      idx03 = static_cast<std::int32_t>(i);
    }
  }
  ASSERT_GE(idx03, 0);
  // 0 transmits. With only (0,3) active: 1 (G) and 3 (selected) receive; 2
  // does not.
  Execution exec(net, scripted_factory({{1}, {0}, {0}, {0}}), assign(4),
                 std::make_unique<SelectedEdges>(std::vector<std::int32_t>{idx03}),
                 {1, 10, {}});
  exec.step();
  const auto& deliveries = exec.history().round(0).deliveries;
  ASSERT_EQ(deliveries.size(), 2u);
  std::set<int> receivers;
  for (const auto& d : deliveries) receivers.insert(d.receiver);
  EXPECT_TRUE(receivers.count(1));
  EXPECT_TRUE(receivers.count(3));
  EXPECT_FALSE(receivers.count(2));
}

TEST(Engine, FastPathMatchesGeneralPathOnCompleteGPrime) {
  // Dual clique: all-on + k transmitters. The fast path (complete G') must
  // agree with first principles: 1 transmitter -> n-1 deliveries; >=2 -> 0.
  const DualCliqueNet dc = dual_clique(8);
  {
    Execution exec(dc.net,
                   scripted_factory({{1}, {0}, {0}, {0}, {0}, {0}, {0}, {0}}),
                   assign(8), std::make_unique<AllExtraEdges>(), {1, 10, {}});
    exec.step();
    EXPECT_EQ(exec.history().round(0).deliveries.size(), 7u);
  }
  {
    Execution exec(dc.net,
                   scripted_factory({{1}, {1}, {0}, {0}, {0}, {0}, {0}, {0}}),
                   assign(8), std::make_unique<AllExtraEdges>(), {1, 10, {}});
    exec.step();
    EXPECT_TRUE(exec.history().round(0).deliveries.empty());
  }
}

TEST(Engine, FeedbackReportsTransmissionAndReception) {
  const DualGraph net = DualGraph::protocol(line_graph(2));
  auto scripts = std::make_shared<std::vector<ScriptedProcess*>>();
  ProcessFactory factory = [scripts](const ProcessEnv& env) {
    auto proc = std::make_unique<ScriptedProcess>(
        env.id == 0 ? std::vector<char>{1} : std::vector<char>{0});
    scripts->push_back(proc.get());
    return proc;
  };
  Execution exec(net, factory, assign(2), std::make_unique<NoExtraEdges>(),
                 {1, 10, {}});
  exec.step();
  ASSERT_EQ(scripts->size(), 2u);
  const auto& fb0 = (*scripts)[0]->feedback();
  const auto& fb1 = (*scripts)[1]->feedback();
  ASSERT_EQ(fb0.size(), 1u);
  ASSERT_EQ(fb1.size(), 1u);
  EXPECT_TRUE(fb0[0].transmitted);
  EXPECT_FALSE(fb0[0].received.has_value());
  EXPECT_FALSE(fb1[0].transmitted);
  ASSERT_TRUE(fb1[0].received.has_value());
  EXPECT_EQ(fb1[0].sender, 0);
  EXPECT_EQ(fb1[0].received->source, 0);
}

TEST(Engine, FirstReceiveRoundTracked) {
  const DualGraph net = DualGraph::protocol(line_graph(3));
  // 0 transmits in rounds 0 and 1; 1 relays nothing.
  Execution exec(net, scripted_factory({{1, 1}, {0, 0}, {0, 0}}), assign(3),
                 std::make_unique<NoExtraEdges>(), {1, 2, {}});
  exec.run();
  EXPECT_EQ(exec.first_receive_round()[1], 0);
  EXPECT_EQ(exec.first_receive_round()[0], -1);
  EXPECT_EQ(exec.first_receive_round()[2], -1);
}

TEST(Engine, DeterministicReplay) {
  const DualCliqueNet dc = dual_clique(16);
  const auto run_once = [&](std::uint64_t seed) {
    Execution exec(dc.net, decay_global_factory(DecayGlobalConfig::fast()),
                   std::make_shared<GlobalBroadcastProblem>(dc.net, 2),
                   std::make_unique<RandomIidEdges>(0.3), {seed, 2000, {}});
    exec.run();
    std::vector<std::vector<int>> transmissions;
    for (const auto& rec : exec.history().records()) {
      transmissions.push_back(rec.transmitters);
    }
    return transmissions;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(Engine, RunStopsWhenSolved) {
  const DualGraph net = DualGraph::protocol(complete_graph(4));
  Execution exec(net, decay_global_factory(DecayGlobalConfig::fast()),
                 std::make_shared<GlobalBroadcastProblem>(net, 0),
                 std::make_unique<NoExtraEdges>(), {1, 5000, {}});
  const RunResult result = exec.run();
  ASSERT_TRUE(result.solved);
  EXPECT_LT(result.rounds, 5000);
  EXPECT_TRUE(exec.done());
  EXPECT_THROW(exec.step(), ContractViolation);
}

TEST(Engine, MaxRoundsCensorsUnsolvedRun) {
  // Nobody ever transmits: global broadcast cannot complete.
  const DualGraph net = DualGraph::protocol(line_graph(4));
  Execution exec(net, scripted_factory({{}, {}, {}, {}}),
                 std::make_shared<GlobalBroadcastProblem>(net, 0),
                 std::make_unique<NoExtraEdges>(), {1, 50, {}});
  const RunResult result = exec.run();
  EXPECT_FALSE(result.solved);
  EXPECT_EQ(result.rounds, 50);
}

TEST(Engine, EnvOverrideRewritesIdentity) {
  const DualGraph net = DualGraph::protocol(line_graph(2));
  std::vector<ProcessEnv> seen;
  ProcessFactory factory = [&seen](const ProcessEnv& env) {
    seen.push_back(env);
    return std::make_unique<ScriptedProcess>(std::vector<char>{});
  };
  ExecutionConfig cfg{1, 10, {}};
  cfg.env_override = [](ProcessEnv env) {
    env.id += 100;
    env.n = 1000;
    return env;
  };
  Execution exec(net, factory, assign(2), std::make_unique<NoExtraEdges>(),
                 cfg);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].id, 100);
  EXPECT_EQ(seen[1].id, 101);
  EXPECT_EQ(seen[0].n, 1000);
}

}  // namespace
}  // namespace dualcast
