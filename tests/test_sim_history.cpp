// ExecutionHistory bookkeeping: totals, per-round records, adversary-choice
// accounting, and bounds checking.

#include <gtest/gtest.h>

#include "adversary/static_adversaries.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"
#include "util/assert.hpp"

namespace dualcast {
namespace {

using testing::scripted_factory;

std::shared_ptr<Problem> assign(int n) {
  return std::make_shared<AssignmentProblem>(n, -1, std::vector<int>{});
}

TEST(History, TotalsMatchRecords) {
  const DualGraph net = DualGraph::protocol(line_graph(4));
  // Rounds: r0 nodes {0}, r1 {0,2}, r2 {} transmit.
  Execution exec(net,
                 scripted_factory({{1, 1, 0}, {0, 0, 0}, {0, 1, 0}, {0, 0, 0}}),
                 assign(4), std::make_unique<NoExtraEdges>(), {1, 3, {}});
  exec.run();
  EXPECT_EQ(exec.history().rounds(), 3);
  EXPECT_EQ(exec.history().total_transmissions(), 3);
  // r0: 0 -> 1 delivered. r1: 0 and 2 collide at 1, but 3 hears only 2.
  EXPECT_EQ(exec.history().total_deliveries(), 2);
}

TEST(History, RoundAccessorBoundsChecked) {
  const DualGraph net = DualGraph::protocol(line_graph(2));
  Execution exec(net, scripted_factory({{1}, {0}}), assign(2),
                 std::make_unique<NoExtraEdges>(), {1, 1, {}});
  exec.run();
  EXPECT_NO_THROW(exec.history().round(0));
  EXPECT_THROW(exec.history().round(1), ContractViolation);
  EXPECT_THROW(exec.history().round(-1), ContractViolation);
}

TEST(History, SentMessagesParallelTransmitters) {
  const DualGraph net = DualGraph::protocol(line_graph(3));
  Execution exec(net, scripted_factory({{1}, {0}, {1}}), assign(3),
                 std::make_unique<NoExtraEdges>(), {1, 1, {}});
  exec.run();
  const RoundRecord& rec = exec.history().round(0);
  ASSERT_EQ(rec.transmitters.size(), rec.sent.size());
  for (std::size_t i = 0; i < rec.transmitters.size(); ++i) {
    EXPECT_EQ(rec.sent[i].source, rec.transmitters[i]);
  }
}

TEST(History, ActivatedAccountingPerKind) {
  Graph g = line_graph(3);
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  {
    Execution exec(net, scripted_factory({{1}, {0}, {0}}), assign(3),
                   std::make_unique<NoExtraEdges>(), {1, 1, {}});
    exec.run();
    EXPECT_EQ(exec.history().round(0).activated, EdgeSet::Kind::none);
    EXPECT_EQ(exec.history().round(0).activated_count, 0);
    EXPECT_TRUE(exec.history().round(0).activated_indices.empty());
  }
  {
    Execution exec(net, scripted_factory({{1}, {0}, {0}}), assign(3),
                   std::make_unique<AllExtraEdges>(), {1, 1, {}});
    exec.run();
    EXPECT_EQ(exec.history().round(0).activated, EdgeSet::Kind::all);
    EXPECT_EQ(exec.history().round(0).activated_count, 1);
  }
  {
    Execution exec(net, scripted_factory({{1}, {0}, {0}}), assign(3),
                   std::make_unique<RandomIidEdges>(1.0), {1, 1, {}});
    exec.run();
    // p=1.0 short-circuits to Kind::all inside RandomIidEdges.
    EXPECT_EQ(exec.history().round(0).activated, EdgeSet::Kind::all);
  }
}

TEST(History, SomeKindRecordsExactIndices) {
  Graph g = line_graph(4);
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.add_edge(1, 3);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));

  class PickFirst final : public LinkProcess {
   public:
    AdversaryClass adversary_class() const override {
      return AdversaryClass::oblivious;
    }
    EdgeSet choose_oblivious(int, Rng&) override {
      return EdgeSet::some({0});
    }
  };
  Execution exec(net, scripted_factory({{1}, {0}, {0}, {0}}), assign(4),
                 std::make_unique<PickFirst>(), {1, 1, {}});
  exec.run();
  const RoundRecord& rec = exec.history().round(0);
  EXPECT_EQ(rec.activated, EdgeSet::Kind::some);
  EXPECT_EQ(rec.activated_count, 1);
  ASSERT_EQ(rec.activated_indices.size(), 1u);
  EXPECT_EQ(rec.activated_indices[0], 0);
}

TEST(History, EngineRejectsOutOfRangeEdgeIndices) {
  Graph g = line_graph(3);
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));

  class BadIndices final : public LinkProcess {
   public:
    AdversaryClass adversary_class() const override {
      return AdversaryClass::oblivious;
    }
    EdgeSet choose_oblivious(int, Rng&) override {
      return EdgeSet::some({5});  // only index 0 exists
    }
  };
  Execution exec(net, scripted_factory({{1}, {0}, {0}}), assign(3),
                 std::make_unique<BadIndices>(), {1, 1, {}});
  EXPECT_THROW(exec.step(), ContractViolation);
}

}  // namespace
}  // namespace dualcast
