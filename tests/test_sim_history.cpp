// ExecutionHistory bookkeeping: totals, per-round records, adversary-choice
// accounting, bounds checking, and the lean (aggregates-only) retention
// policy including its O(n)-memory guarantee.

#include <gtest/gtest.h>

#include "adversary/dense_sparse.hpp"
#include "adversary/static_adversaries.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"
#include "util/assert.hpp"

namespace dualcast {
namespace {

using testing::scripted_factory;

std::shared_ptr<Problem> assign(int n) {
  return std::make_shared<AssignmentProblem>(n, -1, std::vector<int>{});
}

/// Transmits every `period` rounds, forever. Keeps long-horizon executions
/// cheap (no per-round state accumulation, unlike ScriptedProcess).
ProcessFactory periodic_factory(int period) {
  return [period](const ProcessEnv&) {
    class Periodic final : public InspectableProcess {
     public:
      explicit Periodic(int period) : period_(period) {}
      bool transmits(int round) const {
        return (round + env_.id) % period_ == 0;
      }
      Action on_round(int round, Rng&) override {
        if (!transmits(round)) return Action::listen();
        Message m;
        m.source = env_.id;
        return Action::send(m);
      }
      double transmit_probability(int round) const override {
        return transmits(round) ? 1.0 : 0.0;
      }

     private:
      int period_;
    };
    return std::make_unique<Periodic>(period);
  };
}

DualGraph ring_with_chords(int n) {
  Graph g = ring_graph(n);
  Graph gp = ring_graph(n);
  for (int v = 0; v + 2 < n; v += 2) gp.add_edge(v, v + 2);
  gp.finalize();
  return DualGraph(std::move(g), std::move(gp));
}

TEST(History, TotalsMatchRecords) {
  const DualGraph net = DualGraph::protocol(line_graph(4));
  // Rounds: r0 nodes {0}, r1 {0,2}, r2 {} transmit.
  Execution exec(net,
                 scripted_factory({{1, 1, 0}, {0, 0, 0}, {0, 1, 0}, {0, 0, 0}}),
                 assign(4), std::make_unique<NoExtraEdges>(), {1, 3, {}});
  exec.run();
  EXPECT_EQ(exec.history().rounds(), 3);
  EXPECT_EQ(exec.history().total_transmissions(), 3);
  // r0: 0 -> 1 delivered. r1: 0 and 2 collide at 1, but 3 hears only 2.
  EXPECT_EQ(exec.history().total_deliveries(), 2);
}

TEST(History, RoundAccessorBoundsChecked) {
  const DualGraph net = DualGraph::protocol(line_graph(2));
  Execution exec(net, scripted_factory({{1}, {0}}), assign(2),
                 std::make_unique<NoExtraEdges>(), {1, 1, {}});
  exec.run();
  EXPECT_NO_THROW(exec.history().round(0));
  EXPECT_THROW(exec.history().round(1), ContractViolation);
  EXPECT_THROW(exec.history().round(-1), ContractViolation);
}

TEST(History, SentMessagesParallelTransmitters) {
  const DualGraph net = DualGraph::protocol(line_graph(3));
  Execution exec(net, scripted_factory({{1}, {0}, {1}}), assign(3),
                 std::make_unique<NoExtraEdges>(), {1, 1, {}});
  exec.run();
  const RoundRecord& rec = exec.history().round(0);
  ASSERT_EQ(rec.transmitters.size(), rec.sent.size());
  for (std::size_t i = 0; i < rec.transmitters.size(); ++i) {
    EXPECT_EQ(rec.sent[i].source, rec.transmitters[i]);
  }
}

TEST(History, ActivatedAccountingPerKind) {
  Graph g = line_graph(3);
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  {
    Execution exec(net, scripted_factory({{1}, {0}, {0}}), assign(3),
                   std::make_unique<NoExtraEdges>(), {1, 1, {}});
    exec.run();
    EXPECT_EQ(exec.history().round(0).activated, EdgeSet::Kind::none);
    EXPECT_EQ(exec.history().round(0).activated_count, 0);
    EXPECT_TRUE(exec.history().round(0).activated_mask.empty());
  }
  {
    Execution exec(net, scripted_factory({{1}, {0}, {0}}), assign(3),
                   std::make_unique<AllExtraEdges>(), {1, 1, {}});
    exec.run();
    EXPECT_EQ(exec.history().round(0).activated, EdgeSet::Kind::all);
    EXPECT_EQ(exec.history().round(0).activated_count, 1);
  }
  {
    Execution exec(net, scripted_factory({{1}, {0}, {0}}), assign(3),
                   std::make_unique<RandomIidEdges>(1.0), {1, 1, {}});
    exec.run();
    // p=1.0 short-circuits to Kind::all inside RandomIidEdges.
    EXPECT_EQ(exec.history().round(0).activated, EdgeSet::Kind::all);
  }
}

TEST(History, MaskKindRecordsExactEdgeSet) {
  Graph g = line_graph(4);
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.add_edge(1, 3);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));

  class PickFirst final : public LinkProcess {
   public:
    AdversaryClass adversary_class() const override {
      return AdversaryClass::oblivious;
    }
    void choose_oblivious(int, Rng&, EdgeSet& out) override {
      out = EdgeSet::some({0});
    }
  };
  Execution exec(net, scripted_factory({{1}, {0}, {0}, {0}}), assign(4),
                 std::make_unique<PickFirst>(), {1, 1, {}});
  exec.run();
  const RoundRecord& rec = exec.history().round(0);
  EXPECT_EQ(rec.activated, EdgeSet::Kind::mask);
  EXPECT_EQ(rec.activated_count, 1);
  std::vector<std::int64_t> bits;
  for_each_mask_bit(rec.activated_mask, [&](std::int64_t e) {
    bits.push_back(e);
  });
  EXPECT_EQ(bits, (std::vector<std::int64_t>{0}));
}

TEST(History, EmptySelectionCollapsesToNone) {
  // EdgeSet::some({}) — and any all-zero mask — must normalize to
  // Kind::none, so no-op rounds take the resolver's no-overlay fast path.
  Graph g = line_graph(4);
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));

  class EmptySome final : public LinkProcess {
   public:
    AdversaryClass adversary_class() const override {
      return AdversaryClass::oblivious;
    }
    void choose_oblivious(int, Rng&, EdgeSet& out) override {
      out = EdgeSet::some({});
    }
  };
  Execution exec(net, scripted_factory({{1}, {0}, {0}, {0}}), assign(4),
                 std::make_unique<EmptySome>(), {1, 1, {}});
  exec.run();
  const RoundRecord& rec = exec.history().round(0);
  EXPECT_EQ(rec.activated, EdgeSet::Kind::none);
  EXPECT_EQ(rec.activated_count, 0);
  EXPECT_TRUE(rec.activated_mask.empty());
}

TEST(History, EngineRejectsOutOfRangeEdgeIndices) {
  Graph g = line_graph(3);
  Graph gp = g;
  gp.add_edge(0, 2);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));

  class BadIndices final : public LinkProcess {
   public:
    AdversaryClass adversary_class() const override {
      return AdversaryClass::oblivious;
    }
    void choose_oblivious(int, Rng&, EdgeSet& out) override {
      out = EdgeSet::some({5});  // only index 0 exists
    }
  };
  Execution exec(net, scripted_factory({{1}, {0}, {0}}), assign(3),
                 std::make_unique<BadIndices>(), {1, 1, {}});
  EXPECT_THROW(exec.step(), ContractViolation);
}

// ---------------------------------------------------------------------------
// HistoryPolicy::lean
// ---------------------------------------------------------------------------

TEST(HistoryPolicyTest, LeanKeepsAggregatesDropsTrace) {
  // Two executions with the same seed replay identically, so lean must
  // reproduce every aggregate the full policy computes.
  const DualGraph net = ring_with_chords(8);
  const auto make = [&](HistoryPolicy policy) {
    return std::make_unique<Execution>(
        net, periodic_factory(3), assign(8),
        std::make_unique<RandomIidEdges>(0.5),
        ExecutionConfig{}
            .with_seed(21)
            .with_max_rounds(40)
            .with_history_policy(policy));
  };
  const auto full = make(HistoryPolicy::full);
  const auto lean = make(HistoryPolicy::lean);
  full->run();
  lean->run();
  EXPECT_EQ(full->history_policy(), HistoryPolicy::full);
  EXPECT_EQ(lean->history_policy(), HistoryPolicy::lean);
  EXPECT_EQ(lean->history().rounds(), full->history().rounds());
  EXPECT_EQ(lean->history().total_transmissions(),
            full->history().total_transmissions());
  EXPECT_EQ(lean->history().total_deliveries(),
            full->history().total_deliveries());
  EXPECT_EQ(lean->first_receive_round(), full->first_receive_round());
  // The per-round trace is gone under lean — accessing it is a contract
  // violation, not a silent empty read...
  EXPECT_THROW(lean->history().round(0), ContractViolation);
  EXPECT_THROW(lean->history().records(), ContractViolation);
  // ...but the most recent record stays available under both policies.
  EXPECT_EQ(lean->history().last().transmitters,
            full->history().last().transmitters);
  EXPECT_EQ(lean->history().last().activated,
            full->history().last().activated);
}

TEST(HistoryPolicyTest, LeanMemoryIsIndependentOfRoundCountOver50kRounds) {
  // The history_cap guard: under lean the trace must not grow with the
  // round count. Run 50k rounds (with a `some`-kind adversary so record
  // buffers are exercised every round) and assert the history footprint is
  // O(n) — identical to a 1k-round run and far below the full trace.
  const DualGraph net = ring_with_chords(16);
  const auto footprint_after = [&](int rounds) {
    Execution exec(net, periodic_factory(4), assign(16),
                   std::make_unique<RandomIidEdges>(0.5),
                   ExecutionConfig{}
                       .with_seed(5)
                       .with_max_rounds(rounds)
                       .with_history_policy(HistoryPolicy::lean));
    exec.run();
    EXPECT_EQ(exec.history().rounds(), rounds);
    return exec.history().approx_bytes();
  };
  const std::size_t small = footprint_after(1000);
  const std::size_t large = footprint_after(50000);
  // 50x the rounds, same O(n) footprint. (Buffer capacities track the
  // largest single round seen, never the round count, so allow only the
  // slack of one doubling.)
  EXPECT_LE(large, 2 * small);
  EXPECT_LT(large, 64u * 1024u);
}

TEST(HistoryPolicyTest, AdaptiveAdversaryForcesFullFallback) {
  // An adaptive adversary that does not override needs_history() claims the
  // trace, so a lean request silently falls back to full.
  class TraceReader final : public LinkProcess {
   public:
    AdversaryClass adversary_class() const override {
      return AdversaryClass::online_adaptive;
    }
    void choose_online(int, const ExecutionHistory&, const StateInspector&,
                       Rng&, EdgeSet& out) override {
      out.set_none();
    }
  };
  const DualGraph net = ring_with_chords(6);
  Execution exec(net, periodic_factory(2), assign(6),
                 std::make_unique<TraceReader>(),
                 ExecutionConfig{}
                     .with_seed(3)
                     .with_max_rounds(10)
                     .with_history_policy(HistoryPolicy::lean));
  exec.run();
  EXPECT_EQ(exec.history_policy(), HistoryPolicy::full);
  EXPECT_NO_THROW(exec.history().round(9));
}

TEST(HistoryPolicyTest, DeclaredNonReadersHonorLean) {
  // DenseSparseOnline is adaptive but declares needs_history() == false
  // (it reads only the StateInspector), so lean is honored.
  const DualGraph net = ring_with_chords(8);
  Execution exec(net, periodic_factory(2), assign(8),
                 std::make_unique<DenseSparseOnline>(DenseSparseConfig{}),
                 ExecutionConfig{}
                     .with_seed(3)
                     .with_max_rounds(10)
                     .with_history_policy(HistoryPolicy::lean));
  exec.run();
  EXPECT_EQ(exec.history_policy(), HistoryPolicy::lean);
}

}  // namespace
}  // namespace dualcast
