// Batch-engine equivalence: for every ported kernel, KernelExecution must
// replay bit-identically against the scalar Execution — same transmitters,
// messages, deliveries, solve round — across topologies, adversary classes
// (including adaptive ones, which also exercises the kernel-backed
// StateInspector), and problems. Plus the scalar-adapter path for custom
// algorithms and the batch-compatibility contract for problems.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "scenario/registries.hpp"
#include "sim/execution.hpp"
#include "sim/kernel_execution.hpp"
#include "test_support.hpp"
#include "util/assert.hpp"

namespace dualcast {
namespace {

using scenario::Topology;

struct Combo {
  std::string topology;
  std::string algorithm;
  std::string adversary;
  std::string problem;
  int max_rounds;
};

/// Runs `max_rounds` (or to solve) on both engines and compares the full
/// observable trace.
void expect_engines_agree(const Combo& combo, std::uint64_t seed) {
  SCOPED_TRACE(combo.topology + " | " + combo.algorithm + " | " +
               combo.adversary + " | " + combo.problem);
  const Topology topo = scenario::topologies().build(combo.topology, 5);
  const ProcessFactory factory =
      scenario::algorithms().build(combo.algorithm);
  const KernelFactory kernel_factory =
      scenario::build_kernel_or_null(combo.algorithm);
  ASSERT_TRUE(kernel_factory) << "no kernel registered for "
                              << combo.algorithm;
  const auto adversary = [&] {
    return scenario::adversaries().build(combo.adversary, topo)();
  };
  const auto problem = [&] {
    return scenario::problems().build(combo.problem, topo)();
  };
  const auto config = [&] {
    return ExecutionConfig{}
        .with_seed(seed)
        .with_max_rounds(combo.max_rounds)
        .with_history_policy(HistoryPolicy::full);
  };

  Execution scalar(topo.net(), factory, problem(), adversary(), config());
  const RunResult scalar_result = scalar.run();
  KernelExecution kernel(topo.net(), factory, kernel_factory(), problem(),
                         adversary(), config());
  const RunResult kernel_result = kernel.run();

  ASSERT_EQ(scalar_result.solved, kernel_result.solved);
  ASSERT_EQ(scalar_result.rounds, kernel_result.rounds);
  EXPECT_EQ(scalar.first_receive_round(), kernel.first_receive_round());

  const auto& s_records = scalar.history().records();
  const auto& k_records = kernel.history().records();
  ASSERT_EQ(s_records.size(), k_records.size());
  for (std::size_t r = 0; r < s_records.size(); ++r) {
    const RoundRecord& a = s_records[r];
    const RoundRecord& b = k_records[r];
    ASSERT_EQ(a.transmitters, b.transmitters) << "round " << r;
    ASSERT_EQ(a.sent.size(), b.sent.size()) << "round " << r;
    for (std::size_t i = 0; i < a.sent.size(); ++i) {
      ASSERT_TRUE(a.sent[i] == b.sent[i]) << "round " << r << " tx " << i;
    }
    ASSERT_EQ(a.activated, b.activated) << "round " << r;
    ASSERT_EQ(a.activated_count, b.activated_count) << "round " << r;
    // activated_mask contents are unspecified scratch unless the round's
    // kind is mask (see RoundRecord).
    if (a.activated == EdgeSet::Kind::mask) {
      ASSERT_EQ(a.activated_mask, b.activated_mask) << "round " << r;
    }
    // The delivery *set* is engine-invariant; the emission order depends on
    // the resolver strategy.
    const auto key = [](const Delivery& d) {
      return std::tuple(d.receiver, d.sender, d.transmitter_index);
    };
    std::vector<std::tuple<int, int, int>> da;
    std::vector<std::tuple<int, int, int>> db;
    for (const Delivery& d : a.deliveries) da.push_back(key(d));
    for (const Delivery& d : b.deliveries) db.push_back(key(d));
    std::sort(da.begin(), da.end());
    std::sort(db.begin(), db.end());
    ASSERT_EQ(da, db) << "round " << r;
  }
}

TEST(KernelEngineEquivalence, DecayGlobalAcrossAdversaryClasses) {
  for (const char* adversary :
       {"none", "all", "iid(0.4)", "flicker(3,2)", "anti_schedule",
        "dense_sparse", "collider"}) {
    expect_engines_agree({"dual_clique(32)", "decay_global(fixed,persistent)",
                          adversary, "global(1)", 600},
                         11);
    expect_engines_agree({"dual_clique(32)",
                          "decay_global(permuted,persistent)", adversary,
                          "global(1)", 600},
                         12);
  }
  expect_engines_agree(
      {"line_overlay(48,4)", "decay_global(permuted)", "iid(0.5)",
       "global(0)", 800},
      13);
}

TEST(KernelEngineEquivalence, LocalDecayAndRoundRobin) {
  for (const char* adversary : {"none", "iid(0.3)", "dense_sparse"}) {
    expect_engines_agree({"dual_clique(24)", "decay_local", adversary,
                          "local(side_a)", 400},
                         21);
    expect_engines_agree({"dual_clique(24)", "decay_local(permuted)",
                          adversary, "local(side_a)", 400},
                         22);
    expect_engines_agree({"dual_clique(24)", "round_robin", adversary,
                          "global(1)", 400},
                         23);
    expect_engines_agree({"dual_clique(24)", "round_robin(norelay)",
                          adversary, "local(side_a)", 400},
                         24);
  }
}

TEST(KernelEngineEquivalence, RobustMixAndGossip) {
  for (const char* adversary : {"none", "iid(0.4)", "collider"}) {
    expect_engines_agree({"dual_clique(24)", "robust_mix", adversary,
                          "global(1)", 700},
                         31);
    expect_engines_agree(
        {"line_overlay(32,3)", "gossip", adversary, "gossip(4)", 2500}, 32);
    // Quiescing gossip: the expiry windows gate both the coins and the
    // offer rotation, so the parity contract covers them too.
    expect_engines_agree(
        {"dual_clique(32)", "gossip(quiesce)", adversary, "gossip(2)", 2500},
        33);
  }
}

TEST(KernelEngineEquivalence, GeoLocalBothSeedModes) {
  for (const char* adversary : {"none", "iid(0.3)", "flicker(2,2)"}) {
    expect_engines_agree({"jgrid(8,8,0.5,0.05,2.0)", "geo_local", adversary,
                          "local(every(3))", 2000},
                         41);
    expect_engines_agree({"jgrid(8,8,0.5,0.05,2.0)", "geo_local(private)",
                          adversary, "local(every(3))", 2000},
                         42);
  }
  // Bracelet pre-simulation: construction-aware oblivious attack.
  expect_engines_agree({"bracelet(96)", "decay_local", "bracelet_presim(0.3)",
                        "local(heads_a)", 600},
                       43);
}

TEST(KernelEngineEquivalence, MultipleSeedsSpotCheck) {
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    expect_engines_agree({"jgrid(6,6,0.5,0.05,2.0)", "geo_local", "iid(0.5)",
                          "local(every(2))", 1500},
                         seed);
    expect_engines_agree({"dual_clique(48)",
                          "decay_global(permuted,persistent)", "dense_sparse",
                          "global(1)", 800},
                         seed);
  }
}

TEST(KernelEngineAdapter, CustomProcessRunsIdentically) {
  // A scripted (non-ported) algorithm through the adapter: the batch engine
  // must reproduce the scalar run including per-process feedback.
  const Topology topo = scenario::topologies().build("dual_clique(16)", 5);
  const ProcessFactory factory = testing::scripted_factory([&] {
    std::vector<std::vector<char>> scripts(16);
    scripts[1] = {1, 0, 1, 0, 1};
    scripts[5] = {0, 1, 1, 0, 0};
    scripts[9] = {0, 0, 1, 1, 0};
    return scripts;
  }());
  const auto run = [&](auto&& make) {
    auto exec = make();
    exec->run();
    std::vector<std::vector<int>> tx;
    for (const auto& rec : exec->history().records()) {
      tx.push_back(rec.transmitters);
    }
    return tx;
  };
  const auto problem = scenario::problems().build("assignment(1)", topo);
  const auto adversary = scenario::adversaries().build("iid(0.5)", topo);
  const auto cfg =
      ExecutionConfig{}.with_seed(3).with_max_rounds(5).with_history_policy(
          HistoryPolicy::full);
  const auto scalar_tx = run([&] {
    return std::make_unique<Execution>(topo.net(), factory, problem(),
                                       adversary(), cfg);
  });
  const auto kernel_tx = run([&] {
    return std::make_unique<KernelExecution>(
        topo.net(), factory, make_scalar_kernel_adapter(factory), problem(),
        adversary(), cfg);
  });
  EXPECT_EQ(scalar_tx, kernel_tx);
}

TEST(KernelEngineContract, NonBatchProblemRequiresAdapter) {
  // A problem that does not declare batch_compatible() cannot run on a
  // process-less kernel...
  class OpaqueProblem final : public Problem {
   public:
    std::string name() const override { return "opaque"; }
    bool is_source(int v) const override { return v == 0; }
    bool solved(
        const std::vector<std::unique_ptr<Process>>& procs) const override {
      return !procs.empty() && procs[0]->has_message();
    }
  };
  const Topology topo = scenario::topologies().build("dual_clique(8)", 5);
  const ProcessFactory factory = scenario::algorithms().build("round_robin");
  const KernelFactory kernel = scenario::build_kernel_or_null("round_robin");
  const auto adversary = scenario::adversaries().build("none", topo);
  EXPECT_THROW(KernelExecution(topo.net(), factory, kernel(),
                               std::make_shared<OpaqueProblem>(), adversary(),
                               ExecutionConfig{}.with_seed(1)),
               ContractViolation);
  // ...and runs fine through the scalar adapter.
  KernelExecution exec(topo.net(), factory,
                       make_scalar_kernel_adapter(factory),
                       std::make_shared<OpaqueProblem>(), adversary(),
                       ExecutionConfig{}.with_seed(1).with_max_rounds(4));
  exec.run();
  EXPECT_TRUE(exec.solved());
}

}  // namespace
}  // namespace dualcast
