// Problem semantics: role assignment, receiver-set computation, and the two
// local-broadcast crediting modes.

#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/static_adversaries.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"
#include "util/assert.hpp"

namespace dualcast {
namespace {

using testing::scripted_factory;

TEST(GlobalProblem, AssignsSourceRole) {
  const DualGraph net = DualGraph::protocol(line_graph(4));
  const GlobalBroadcastProblem problem(net, 2);
  EXPECT_TRUE(problem.is_source(2));
  EXPECT_FALSE(problem.is_source(0));
  EXPECT_FALSE(problem.in_broadcast_set(2));
  EXPECT_EQ(problem.initial_message(2).source, 2);
  EXPECT_EQ(problem.initial_message(0).source, -1);
}

TEST(GlobalProblem, RequiresConnectedG) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  Graph gp = complete_graph(4);
  const DualGraph net(std::move(g), std::move(gp));
  EXPECT_THROW(GlobalBroadcastProblem(net, 0), ContractViolation);
}

TEST(GlobalProblem, RequiresValidSource) {
  const DualGraph net = DualGraph::protocol(line_graph(4));
  EXPECT_THROW(GlobalBroadcastProblem(net, 4), ContractViolation);
  EXPECT_THROW(GlobalBroadcastProblem(net, -1), ContractViolation);
}

TEST(LocalProblem, ReceiverSetIsGNeighborhoodOfB) {
  // Line 0-1-2-3-4 with B = {0, 3}: R = N_G(B) = {1, 2, 4} plus any B nodes
  // adjacent to B (none here).
  const DualGraph net = DualGraph::protocol(line_graph(5));
  const LocalBroadcastProblem problem(net, {0, 3});
  std::vector<int> r = problem.receivers();
  std::sort(r.begin(), r.end());
  EXPECT_EQ(r, (std::vector<int>{1, 2, 4}));
}

TEST(LocalProblem, AdjacentBNodesAreAlsoReceivers) {
  // B = {1, 2} adjacent in the line: each is in the other's R.
  const DualGraph net = DualGraph::protocol(line_graph(4));
  const LocalBroadcastProblem problem(net, {1, 2});
  std::vector<int> r = problem.receivers();
  std::sort(r.begin(), r.end());
  EXPECT_EQ(r, (std::vector<int>{0, 1, 2, 3}));
}

TEST(LocalProblem, RejectsBadBroadcastSets) {
  const DualGraph net = DualGraph::protocol(line_graph(4));
  EXPECT_THROW(LocalBroadcastProblem(net, {}), ContractViolation);
  EXPECT_THROW(LocalBroadcastProblem(net, {0, 0}), ContractViolation);
  EXPECT_THROW(LocalBroadcastProblem(net, {4}), ContractViolation);
}

TEST(LocalProblem, SolvedWhenAllReceiversCredited) {
  // Line 0-1-2, B = {0}: R = {1}. One clean transmission solves it.
  const DualGraph net = DualGraph::protocol(line_graph(3));
  auto problem = std::make_shared<LocalBroadcastProblem>(
      net, std::vector<int>{0});
  Execution exec(net, scripted_factory({{1}, {0}, {0}}), problem,
                 std::make_unique<NoExtraEdges>(), {1, 5, {}});
  const RunResult result = exec.run();
  EXPECT_TRUE(result.solved);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_EQ(problem->satisfied_count(), 1);
  EXPECT_TRUE(problem->unsatisfied().empty());
}

TEST(LocalProblem, NonBSendersDoNotCount) {
  // B = {0} on line 0-1-2. Node 2 transmits (it is not in B): node 1 hears
  // it, but that must not satisfy node 1.
  const DualGraph net = DualGraph::protocol(line_graph(3));
  auto problem = std::make_shared<LocalBroadcastProblem>(
      net, std::vector<int>{0});
  Execution exec(net, scripted_factory({{0}, {0}, {1}}), problem,
                 std::make_unique<NoExtraEdges>(), {1, 1, {}});
  const RunResult result = exec.run();
  EXPECT_FALSE(result.solved);
  EXPECT_EQ(problem->satisfied_count(), 0);
}

TEST(LocalProblem, LiberalCreditAcceptsGPrimeDelivery) {
  // G: line 0-1-2 and an isolated-ish node 3 connected via G edge to 2;
  // G' adds (0, 3). B = {0, 2}: R includes 3 (G-neighbor of 2). A delivery
  // from 0 (in B) over the activated G' edge credits 3 under the liberal
  // (paper) reading.
  Graph g = line_graph(4);
  Graph gp = g;
  gp.add_edge(0, 3);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  auto problem = std::make_shared<LocalBroadcastProblem>(
      net, std::vector<int>{0, 2}, ReceiverCredit::any_b_sender);
  // Only node 0 transmits; chord (0,3) active.
  Execution exec(net, scripted_factory({{1}, {0}, {0}, {0}}), problem,
                 std::make_unique<AllExtraEdges>(), {1, 1, {}});
  exec.run();
  const auto unsat = problem->unsatisfied();
  EXPECT_EQ(std::count(unsat.begin(), unsat.end(), 3), 0)
      << "3 should be credited by 0's delivery over G'";
}

TEST(LocalProblem, StrictCreditRequiresGNeighborSender) {
  Graph g = line_graph(4);
  Graph gp = g;
  gp.add_edge(0, 3);
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  auto problem = std::make_shared<LocalBroadcastProblem>(
      net, std::vector<int>{0, 2}, ReceiverCredit::g_neighbor_only);
  Execution exec(net, scripted_factory({{1}, {0}, {0}, {0}}), problem,
                 std::make_unique<AllExtraEdges>(), {1, 1, {}});
  exec.run();
  const auto unsat = problem->unsatisfied();
  EXPECT_EQ(std::count(unsat.begin(), unsat.end(), 3), 1)
      << "0 is not a G-neighbor of 3; strict mode must not credit";
}

TEST(AssignmentProblem, NeverSolvedAndAllowsDisconnected) {
  const DualCliqueNet dc = dual_clique_without_bridge(8);
  auto problem = std::make_shared<AssignmentProblem>(
      8, 0, std::vector<int>{1, 2});
  EXPECT_TRUE(problem->is_source(0));
  EXPECT_TRUE(problem->in_broadcast_set(1));
  EXPECT_FALSE(problem->in_broadcast_set(0));
  Execution exec(dc.net, scripted_factory(std::vector<std::vector<char>>(8)),
                 problem, std::make_unique<NoExtraEdges>(), {1, 3, {}});
  const RunResult result = exec.run();
  EXPECT_FALSE(result.solved);
  EXPECT_EQ(result.rounds, 3);
}

}  // namespace
}  // namespace dualcast
