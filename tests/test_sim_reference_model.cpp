// Reference-model fuzzing: replay randomized executions and recompute every
// round's outcome from first principles (the §2 receive rule applied naively
// in O(n²)), comparing against the engine — including its complete-topology
// fast path. Also covers the collision-detection model variant.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "adversary/offline_collider.hpp"
#include "adversary/static_adversaries.hpp"
#include "graph/generators.hpp"
#include "sim/execution.hpp"
#include "test_support.hpp"

namespace dualcast {
namespace {

using testing::scripted_factory;

/// Recomputes the deliveries of one recorded round per the §2 rule.
std::set<std::pair<int, int>> reference_deliveries(const DualGraph& net,
                                                   const RoundRecord& record) {
  // Build the round's topology adjacency test (through the LayerView /
  // indexed-edge surface, so implicit networks replay too).
  std::set<std::pair<int, int>> extra;
  if (record.activated == EdgeSet::Kind::all) {
    for (std::int64_t e = 0; e < net.gp_only_edge_count(); ++e) {
      extra.insert(net.gp_only_edge(e));
    }
  } else if (record.activated == EdgeSet::Kind::mask) {
    for_each_mask_bit(record.activated_mask, [&](std::int64_t idx) {
      extra.insert(net.gp_only_edge(idx));
    });
  }
  const LayerView g_view = net.g_layer();
  const auto connected = [&](int u, int v) {
    if (g_view.has_edge(u, v)) return true;
    return extra.count({std::min(u, v), std::max(u, v)}) > 0;
  };

  std::set<int> transmitting(record.transmitters.begin(),
                             record.transmitters.end());
  std::set<std::pair<int, int>> out;  // (receiver, sender)
  for (int u = 0; u < net.n(); ++u) {
    if (transmitting.count(u)) continue;  // half-duplex
    int heard = 0;
    int sender = -1;
    for (const int v : record.transmitters) {
      if (connected(u, v)) {
        ++heard;
        sender = v;
      }
    }
    if (heard == 1) out.insert({u, sender});
  }
  return out;
}

/// Random-script fuzz over a given network + adversary; checks every round.
void fuzz_network(const DualGraph& net, std::unique_ptr<LinkProcess> adversary,
                  std::uint64_t seed, int rounds) {
  Rng rng(seed);
  std::vector<std::vector<char>> scripts(static_cast<std::size_t>(net.n()));
  for (auto& script : scripts) {
    script.resize(static_cast<std::size_t>(rounds));
    for (auto& bit : script) bit = rng.bernoulli(0.35) ? 1 : 0;
  }
  Execution exec(net, scripted_factory(scripts),
                 std::make_shared<AssignmentProblem>(net.n(), -1,
                                                     std::vector<int>{}),
                 std::move(adversary), {seed, rounds, {}});
  exec.run();
  ASSERT_EQ(exec.history().rounds(), rounds);
  for (int r = 0; r < rounds; ++r) {
    const RoundRecord& record = exec.history().round(r);
    const auto expected = reference_deliveries(net, record);
    std::set<std::pair<int, int>> actual;
    for (const Delivery& d : record.deliveries) {
      actual.insert({d.receiver, d.sender});
      // Delivery metadata must be internally consistent.
      ASSERT_GE(d.transmitter_index, 0);
      ASSERT_LT(d.transmitter_index,
                static_cast<int>(record.transmitters.size()));
      ASSERT_EQ(record.transmitters[static_cast<std::size_t>(
                    d.transmitter_index)],
                d.sender);
    }
    ASSERT_EQ(actual, expected) << "round " << r;
  }
}

class FuzzSeedParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedParam, RandomGeoNetworkWithIidAdversary) {
  Rng rng(GetParam());
  const GeoNet geo = jittered_grid_geo(5, 5, 0.7, 0.05, 2.0, rng);
  fuzz_network(geo.net, std::make_unique<RandomIidEdges>(0.4), GetParam(), 40);
}

TEST_P(FuzzSeedParam, DualCliqueWithCollider) {
  const DualCliqueNet dc = dual_clique(12, 3);
  fuzz_network(dc.net, std::make_unique<GreedyColliderOffline>(),
               GetParam() + 500, 40);
}

TEST_P(FuzzSeedParam, DualCliqueWithAllEdges) {
  // Exercises the complete-topology fast path against the reference model.
  const DualCliqueNet dc = dual_clique(10);
  fuzz_network(dc.net, std::make_unique<AllExtraEdges>(), GetParam() + 900,
               40);
}

TEST_P(FuzzSeedParam, BraceletWithFlicker) {
  const BraceletNet br = bracelet(32);
  fuzz_network(br.net, std::make_unique<FlickerEdges>(2, 3), GetParam() + 1300,
               40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedParam,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Collision-detection model variant.
// ---------------------------------------------------------------------------

class CollisionProbe final : public InspectableProcess {
 public:
  explicit CollisionProbe(std::vector<char> script)
      : script_(std::move(script)) {}
  Action on_round(int round, Rng&) override {
    if (round < static_cast<int>(script_.size()) &&
        script_[static_cast<std::size_t>(round)]) {
      Message m;
      m.source = env_.id;
      return Action::send(m);
    }
    return Action::listen();
  }
  void on_feedback(int, const RoundFeedback& fb, Rng&) override {
    collisions_.push_back(fb.collision);
    receptions_.push_back(fb.received.has_value());
  }
  double transmit_probability(int round) const override {
    return (round < static_cast<int>(script_.size()) &&
            script_[static_cast<std::size_t>(round)])
               ? 1.0
               : 0.0;
  }
  std::vector<bool> collisions_;
  std::vector<bool> receptions_;

 private:
  std::vector<char> script_;
};

TEST(CollisionDetection, ListenersLearnOfCollisionsWhenEnabled) {
  // Star: both leaves transmit; the center hears a collision.
  const DualGraph net = DualGraph::protocol(star_graph(3));
  std::vector<CollisionProbe*> probes;
  ProcessFactory factory = [&probes](const ProcessEnv& env) {
    auto proc = std::make_unique<CollisionProbe>(
        env.id == 0 ? std::vector<char>{0} : std::vector<char>{1});
    probes.push_back(proc.get());
    return proc;
  };
  ExecutionConfig cfg{1, 1, {}};
  cfg.collision_detection = true;
  Execution exec(net, factory,
                 std::make_shared<AssignmentProblem>(3, -1, std::vector<int>{}),
                 std::make_unique<NoExtraEdges>(), cfg);
  exec.run();
  ASSERT_EQ(probes.size(), 3u);
  EXPECT_TRUE(probes[0]->collisions_[0]);   // center: two neighbors collided
  EXPECT_FALSE(probes[0]->receptions_[0]);
  EXPECT_FALSE(probes[1]->collisions_[0]);  // transmitters learn nothing
  EXPECT_FALSE(probes[2]->collisions_[0]);
}

TEST(CollisionDetection, DisabledByDefaultPerThePaperModel) {
  const DualGraph net = DualGraph::protocol(star_graph(3));
  std::vector<CollisionProbe*> probes;
  ProcessFactory factory = [&probes](const ProcessEnv& env) {
    auto proc = std::make_unique<CollisionProbe>(
        env.id == 0 ? std::vector<char>{0} : std::vector<char>{1});
    probes.push_back(proc.get());
    return proc;
  };
  Execution exec(net, factory,
                 std::make_shared<AssignmentProblem>(3, -1, std::vector<int>{}),
                 std::make_unique<NoExtraEdges>(), {1, 1, {}});
  exec.run();
  EXPECT_FALSE(probes[0]->collisions_[0]);  // silence == collision
}

TEST(CollisionDetection, FastPathReportsCollisionsToo) {
  // Complete G' + all edges on + two transmitters: with detection enabled,
  // every listener must see the collision flag (fast path branch).
  const DualCliqueNet dc = dual_clique(8);
  std::vector<CollisionProbe*> probes;
  ProcessFactory factory = [&probes](const ProcessEnv& env) {
    auto proc = std::make_unique<CollisionProbe>(
        env.id <= 1 ? std::vector<char>{1} : std::vector<char>{0});
    probes.push_back(proc.get());
    return proc;
  };
  ExecutionConfig cfg{1, 1, {}};
  cfg.collision_detection = true;
  Execution exec(dc.net, factory,
                 std::make_shared<AssignmentProblem>(8, -1, std::vector<int>{}),
                 std::make_unique<AllExtraEdges>(), cfg);
  exec.run();
  for (int v = 2; v < 8; ++v) {
    EXPECT_TRUE(probes[static_cast<std::size_t>(v)]->collisions_[0])
        << "listener " << v;
  }
  EXPECT_FALSE(probes[0]->collisions_[0]);
  EXPECT_FALSE(probes[1]->collisions_[0]);
}

TEST(CollisionDetection, SingleTransmitterNeverFlagsCollision) {
  const DualGraph net = DualGraph::protocol(line_graph(4));
  std::vector<CollisionProbe*> probes;
  ProcessFactory factory = [&probes](const ProcessEnv& env) {
    auto proc = std::make_unique<CollisionProbe>(
        env.id == 0 ? std::vector<char>{1} : std::vector<char>{0});
    probes.push_back(proc.get());
    return proc;
  };
  ExecutionConfig cfg{1, 1, {}};
  cfg.collision_detection = true;
  Execution exec(net, factory,
                 std::make_shared<AssignmentProblem>(4, -1, std::vector<int>{}),
                 std::make_unique<NoExtraEdges>(), cfg);
  exec.run();
  for (const auto* probe : probes) {
    EXPECT_FALSE(probe->collisions_[0]);
  }
  EXPECT_TRUE(probes[1]->receptions_[0]);
}

}  // namespace
}  // namespace dualcast
