// DeliveryResolver: the word-parallel bitmap path must agree with the CSR
// sweep — and both with a from-first-principles reference — on random
// graphs, random transmit sets, every edge kind, with and without
// collision detection.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "sim/delivery_resolver.hpp"
#include "util/rng.hpp"

namespace dualcast {
namespace {

struct Resolved {
  /// (receiver, sender, transmitter_index), sorted: the two strategies emit
  /// deliveries in different orders (transmitter-major vs receiver-major);
  /// the *set* must match.
  std::vector<std::tuple<int, int, int>> deliveries;
  std::vector<int> colliders;
};

void canonicalize(Resolved& r) {
  std::sort(r.deliveries.begin(), r.deliveries.end());
  std::sort(r.colliders.begin(), r.colliders.end());
}

Resolved resolve_with(DeliveryResolver::Path path, const DualGraph& net,
                      const std::vector<int>& transmitters,
                      const EdgeSet& edges, bool collision_detection) {
  DeliveryResolver resolver;
  resolver.reset(&net, collision_detection);
  resolver.force_path(path);
  RoundRecord record;
  record.transmitters = transmitters;
  std::vector<int> tx_index_of(static_cast<std::size_t>(net.n()), -1);
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    tx_index_of[static_cast<std::size_t>(transmitters[i])] =
        static_cast<int>(i);
  }
  resolver.resolve(tx_index_of, edges, record);
  Resolved out;
  for (const Delivery& d : record.deliveries) {
    out.deliveries.emplace_back(d.receiver, d.sender, d.transmitter_index);
  }
  out.colliders = resolver.colliders();
  canonicalize(out);
  return out;
}

/// First-principles §2 receive rule: u receives from v iff u listens, v
/// transmits, {u,v} is in G or an activated G'-only edge, and v is u's only
/// such transmitting neighbor.
Resolved resolve_reference(const DualGraph& net,
                           const std::vector<int>& transmitters,
                           const EdgeSet& edges, bool collision_detection) {
  const LayerView g_view = net.g_layer();
  const LayerView gp_view = net.gprime_layer();
  const auto edge_active = [&](int u, int v) {
    if (g_view.has_edge(u, v)) return true;
    if (edges.kind == EdgeSet::Kind::none) return false;
    if (edges.kind == EdgeSet::Kind::all) return gp_view.has_edge(u, v);
    bool active = false;
    for_each_mask_bit(edges.mask, [&](std::int64_t idx) {
      const auto [a, b] = net.gp_only_edge(idx);
      if ((a == u && b == v) || (a == v && b == u)) active = true;
    });
    return active;
  };
  std::vector<char> is_tx(static_cast<std::size_t>(net.n()), 0);
  for (const int v : transmitters) is_tx[static_cast<std::size_t>(v)] = 1;
  Resolved out;
  for (int u = 0; u < net.n(); ++u) {
    if (is_tx[static_cast<std::size_t>(u)]) continue;
    int count = 0;
    int sender = -1;
    for (std::size_t i = 0; i < transmitters.size(); ++i) {
      if (edge_active(u, transmitters[i])) {
        ++count;
        sender = transmitters[i];
      }
    }
    if (count == 1) {
      const auto it =
          std::find(transmitters.begin(), transmitters.end(), sender);
      out.deliveries.emplace_back(
          u, sender, static_cast<int>(it - transmitters.begin()));
    } else if (count >= 2 && collision_detection) {
      out.colliders.push_back(u);
    }
  }
  canonicalize(out);
  return out;
}

DualGraph random_dual(int n, double p_g, double p_extra, Rng& rng) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p_g)) g.add_edge(u, v);
    }
  }
  g.finalize();
  Graph gp = g;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v) && rng.bernoulli(p_extra)) gp.add_edge(u, v);
    }
  }
  gp.finalize();
  return DualGraph(std::move(g), std::move(gp));
}

TEST(DeliveryResolverDifferential, BitmapMatchesSweepAndReference) {
  Rng rng(2024);
  int rounds_checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 8 + static_cast<int>(rng.uniform_int(0, 56));
    const DualGraph net =
        random_dual(n, 0.05 + 0.4 * rng.uniform01(),
                    0.05 + 0.4 * rng.uniform01(), rng);
    ASSERT_NE(net.g_bitmap(), nullptr);
    const std::int64_t m_extra =
        static_cast<std::int64_t>(net.gp_only_edges().size());
    for (int round = 0; round < 8; ++round) {
      // Random transmit set, dense and sparse alike.
      const double p_tx = rng.uniform01();
      std::vector<int> transmitters;
      for (int v = 0; v < n; ++v) {
        if (rng.bernoulli(p_tx)) transmitters.push_back(v);
      }
      // Random edge kind.
      EdgeSet edges;
      const int kind = static_cast<int>(rng.uniform_int(0, 2));
      if (kind == 1) {
        edges = EdgeSet::all();
      } else if (kind == 2 && m_extra > 0) {
        std::vector<std::int32_t> idx;
        for (std::int64_t e = 0; e < m_extra; ++e) {
          if (rng.bernoulli(0.4)) idx.push_back(static_cast<std::int32_t>(e));
        }
        edges = EdgeSet::some(std::move(idx));
      }
      for (const bool collision : {false, true}) {
        const Resolved reference =
            resolve_reference(net, transmitters, edges, collision);
        const Resolved sweep = resolve_with(DeliveryResolver::Path::sweep,
                                            net, transmitters, edges,
                                            collision);
        const Resolved bitmap = resolve_with(DeliveryResolver::Path::bitmap,
                                             net, transmitters, edges,
                                             collision);
        ASSERT_EQ(sweep.deliveries, reference.deliveries)
            << "sweep vs reference, n=" << n << " trial=" << trial;
        ASSERT_EQ(sweep.colliders, reference.colliders);
        ASSERT_EQ(bitmap.deliveries, reference.deliveries)
            << "bitmap vs reference, n=" << n << " trial=" << trial;
        ASSERT_EQ(bitmap.colliders, reference.colliders);
        ++rounds_checked;
      }
    }
  }
  EXPECT_GE(rounds_checked, 600);
}

TEST(DeliveryResolverHeuristic, AutoSelectsBitmapOnDenseRounds) {
  Rng rng(7);
  const DualGraph net = random_dual(256, 0.5, 0.2, rng);
  ASSERT_NE(net.g_bitmap(), nullptr);
  DeliveryResolver resolver;
  resolver.reset(&net, false);

  std::vector<int> tx_index_of(256, -1);
  RoundRecord record;
  // Dense round: every other node transmits over a half-dense G.
  for (int v = 0; v < 256; v += 2) {
    tx_index_of[static_cast<std::size_t>(v)] =
        static_cast<int>(record.transmitters.size());
    record.transmitters.push_back(v);
  }
  resolver.resolve(tx_index_of, EdgeSet::none(), record);
  EXPECT_EQ(resolver.last_path(), DeliveryResolver::Path::bitmap);

  // Sparse round: a single transmitter stays on the CSR sweep.
  for (const int v : record.transmitters) {
    tx_index_of[static_cast<std::size_t>(v)] = -1;
  }
  record.clear();
  record.transmitters.push_back(3);
  tx_index_of[3] = 0;
  resolver.resolve(tx_index_of, EdgeSet::none(), record);
  EXPECT_EQ(resolver.last_path(), DeliveryResolver::Path::sweep);
}

TEST(DeliveryResolverHeuristic, BitmaplessNetworksFallBackToSweep) {
  // Under BitmapPolicy::never (and for graphs whose blocked bitmaps exceed
  // DualGraph::kBitmapMaxBytes) no bitmaps exist; auto must keep working.
  const int n = 5000;
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.finalize();
  Graph gp = g;
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp),
                      DualGraph::BitmapPolicy::never);
  EXPECT_EQ(net.g_bitmap(), nullptr);
  DeliveryResolver resolver;
  resolver.reset(&net, false);
  std::vector<int> tx_index_of(static_cast<std::size_t>(net.n()), -1);
  RoundRecord record;
  record.transmitters.push_back(0);
  tx_index_of[0] = 0;
  resolver.resolve(tx_index_of, EdgeSet::none(), record);
  EXPECT_EQ(resolver.last_path(), DeliveryResolver::Path::sweep);
  ASSERT_EQ(record.deliveries.size(), 1u);
  EXPECT_EQ(record.deliveries[0].receiver, 1);
}

// The structured path: on dual-clique-tagged networks (explicit-detected or
// implicit) the per-side counting strategy must agree with the LayerView
// sweep and the first-principles reference on random rounds of every
// density and edge kind, with and without collision detection.
TEST(DeliveryResolverDifferential, StructuredMatchesSweepAndReference) {
  Rng rng(4242);
  int rounds_checked = 0;
  for (const bool with_bridge : {true, false}) {
    for (const int n : {8, 12, 24}) {
      const DualGraph explicit_net =
          with_bridge ? dual_clique(n, n / 4).net
                      : dual_clique_without_bridge(n).net;
      const DualGraph implicit_net = DualGraph::implicit_dual_clique(
          n, with_bridge ? n / 4 : 0, with_bridge);
      for (const DualGraph* net : {&explicit_net, &implicit_net}) {
        ASSERT_EQ(net->structure(), DualGraph::Structure::dual_clique);
        const std::int64_t m_extra = net->gp_only_edge_count();
        for (int round = 0; round < 12; ++round) {
          const double p_tx = rng.uniform01();
          std::vector<int> transmitters;
          for (int v = 0; v < n; ++v) {
            if (rng.bernoulli(p_tx)) transmitters.push_back(v);
          }
          EdgeSet edges;
          const int kind = round % 3;
          if (kind == 1) {
            edges = EdgeSet::all();
          } else if (kind == 2) {
            std::vector<std::int32_t> idx;
            for (std::int64_t e = 0; e < m_extra; ++e) {
              if (rng.bernoulli(0.3)) idx.push_back(static_cast<std::int32_t>(e));
            }
            edges = EdgeSet::some(std::move(idx));
          }
          for (const bool collision : {false, true}) {
            const Resolved reference =
                resolve_reference(*net, transmitters, edges, collision);
            const Resolved sweep =
                resolve_with(DeliveryResolver::Path::sweep, *net,
                             transmitters, edges, collision);
            const Resolved structured =
                resolve_with(DeliveryResolver::Path::structured, *net,
                             transmitters, edges, collision);
            ASSERT_EQ(sweep.deliveries, reference.deliveries)
                << "sweep vs reference, n=" << n << " round=" << round
                << " bridge=" << with_bridge;
            ASSERT_EQ(sweep.colliders, reference.colliders);
            ASSERT_EQ(structured.deliveries, reference.deliveries)
                << "structured vs reference, n=" << n << " round=" << round
                << " bridge=" << with_bridge
                << " implicit=" << net->is_implicit();
            ASSERT_EQ(structured.colliders, reference.colliders);
            ++rounds_checked;
          }
        }
      }
    }
  }
  EXPECT_GE(rounds_checked, 200);
}

TEST(DeliveryResolverHeuristic, AutoSelectsStructuredOnDualCliques) {
  const DualCliqueNet dc = dual_clique(32, 3);
  DeliveryResolver resolver;
  resolver.reset(&dc.net, false);
  std::vector<int> tx_index_of(32, -1);
  RoundRecord record;
  record.transmitters = {1, 2, 5};
  for (std::size_t i = 0; i < record.transmitters.size(); ++i) {
    tx_index_of[static_cast<std::size_t>(record.transmitters[i])] =
        static_cast<int>(i);
  }
  resolver.resolve(tx_index_of, EdgeSet::none(), record);
  EXPECT_EQ(resolver.last_path(), DeliveryResolver::Path::structured);
}

// The blocked bitmaps past the old flat-row n = 4096 cap: on a large sparse
// dual graph the dense path must exist and agree with the CSR sweep on
// random rounds of every density and edge kind (the first-principles
// reference is quadratic, so the sweep — itself validated against it above
// — is the oracle at this size).
TEST(DeliveryResolverDifferential, BlockedBitmapsAgreeWithSweepPast4096) {
  Rng rng(77);
  const int n = 8192;
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  // Sparse random chords in G plus a random unreliable overlay.
  for (int e = 0; e < 2 * n; ++e) {
    const int u = static_cast<int>(rng.uniform_int(0, n - 1));
    const int v = static_cast<int>(rng.uniform_int(0, n - 1));
    if (u != v) g.add_edge(u, v);
  }
  g.finalize();
  Graph gp = g;
  for (int e = 0; e < 2 * n; ++e) {
    const int u = static_cast<int>(rng.uniform_int(0, n - 1));
    const int v = static_cast<int>(rng.uniform_int(0, n - 1));
    if (u != v) gp.add_edge(u, v);
  }
  gp.finalize();
  const DualGraph net(std::move(g), std::move(gp));
  ASSERT_NE(net.g_bitmap(), nullptr);
  ASSERT_NE(net.gp_only_bitmap(), nullptr);
  EXPECT_EQ(net.g_bitmap()->n(), n);

  const std::int64_t m_extra =
      static_cast<std::int64_t>(net.gp_only_edges().size());
  for (int round = 0; round < 10; ++round) {
    const double p_tx = rng.uniform01();
    std::vector<int> transmitters;
    for (int v = 0; v < n; ++v) {
      if (rng.bernoulli(p_tx)) transmitters.push_back(v);
    }
    EdgeSet edges;
    const int kind = round % 3;
    if (kind == 1) {
      edges = EdgeSet::all();
    } else if (kind == 2 && m_extra > 0) {
      std::vector<std::int32_t> idx;
      for (std::int64_t e = 0; e < m_extra; ++e) {
        if (rng.bernoulli(0.4)) idx.push_back(static_cast<std::int32_t>(e));
      }
      edges = EdgeSet::some(std::move(idx));
    }
    for (const bool collision : {false, true}) {
      const Resolved sweep = resolve_with(DeliveryResolver::Path::sweep, net,
                                          transmitters, edges, collision);
      const Resolved bitmap = resolve_with(DeliveryResolver::Path::bitmap,
                                           net, transmitters, edges,
                                           collision);
      ASSERT_EQ(bitmap.deliveries, sweep.deliveries)
          << "round=" << round << " collision=" << collision;
      ASSERT_EQ(bitmap.colliders, sweep.colliders);
    }
  }
}

}  // namespace
}  // namespace dualcast
