#pragma once

// Shared helpers for the test suite: scripted processes, one-call execution
// runners, and median-over-seeds measurement.

#include <memory>
#include <vector>

#include "analysis/stats.hpp"
#include "sim/execution.hpp"
#include "sim/problem.hpp"
#include "sim/process.hpp"

namespace dualcast::testing {

/// A process driven by an explicit per-round script: transmit in round r iff
/// script[r] is true (clamped to listen after the script ends). Useful for
/// exercising exact collision scenarios.
class ScriptedProcess final : public InspectableProcess {
 public:
  explicit ScriptedProcess(std::vector<char> script)
      : script_(std::move(script)) {}

  Action on_round(int round, Rng& /*rng*/) override {
    if (round < static_cast<int>(script_.size()) &&
        script_[static_cast<std::size_t>(round)]) {
      Message m;
      m.source = env_.id;
      m.payload = static_cast<std::uint64_t>(env_.id);
      return Action::send(m);
    }
    return Action::listen();
  }

  void on_feedback(int /*round*/, const RoundFeedback& feedback,
                   Rng& /*rng*/) override {
    feedback_.push_back(feedback);
  }

  double transmit_probability(int round) const override {
    return (round < static_cast<int>(script_.size()) &&
            script_[static_cast<std::size_t>(round)])
               ? 1.0
               : 0.0;
  }

  const std::vector<RoundFeedback>& feedback() const { return feedback_; }

 private:
  std::vector<char> script_;
  std::vector<RoundFeedback> feedback_;
};

/// Factory for scripted processes: scripts[v] drives node v.
inline ProcessFactory scripted_factory(std::vector<std::vector<char>> scripts) {
  auto shared = std::make_shared<std::vector<std::vector<char>>>(
      std::move(scripts));
  return [shared](const ProcessEnv& env) {
    return std::make_unique<ScriptedProcess>(
        (*shared)[static_cast<std::size_t>(env.id)]);
  };
}

/// Runs global broadcast and returns the result.
inline RunResult run_global(const DualGraph& net, ProcessFactory factory,
                            std::unique_ptr<LinkProcess> adversary, int source,
                            std::uint64_t seed, int max_rounds) {
  Execution exec(net, std::move(factory),
                 std::make_shared<GlobalBroadcastProblem>(net, source),
                 std::move(adversary), ExecutionConfig{seed, max_rounds, {}});
  return exec.run();
}

/// Runs local broadcast and returns the result.
inline RunResult run_local(const DualGraph& net, ProcessFactory factory,
                           std::unique_ptr<LinkProcess> adversary,
                           std::vector<int> broadcast_set, std::uint64_t seed,
                           int max_rounds,
                           ReceiverCredit credit = ReceiverCredit::any_b_sender) {
  Execution exec(net, std::move(factory),
                 std::make_shared<LocalBroadcastProblem>(
                     net, std::move(broadcast_set), credit),
                 std::move(adversary), ExecutionConfig{seed, max_rounds, {}});
  return exec.run();
}

/// Median rounds over `trials` seeds; failed runs are counted as max_rounds
/// (censoring keeps medians meaningful when a few runs time out).
template <typename RunOnce>
double median_rounds(int trials, std::uint64_t base_seed, int max_rounds,
                     RunOnce run_once) {
  std::vector<double> rounds;
  rounds.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    const RunResult result = run_once(base_seed + static_cast<std::uint64_t>(i));
    rounds.push_back(result.solved ? static_cast<double>(result.rounds)
                                   : static_cast<double>(max_rounds));
  }
  return quantile(rounds, 0.5);
}

}  // namespace dualcast::testing
