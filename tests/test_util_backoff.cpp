// Property tests for util::Backoff, the jittered exponential backoff
// every retry loop in the service leans on (worker IO retries, daemon
// idle polling). Across a grid of seeds and (initial, cap) shapes:
//   * every delay lies in [base - base/2, base] for the documented base
//     schedule base_k = min(initial * 2^k, cap) — never 0, never above
//     the cap;
//   * the mean delay per attempt is non-decreasing (the exponential
//     envelope) until the cap flattens it;
//   * reset() returns the schedule to the initial window;
//   * the jitter stream is deterministic per seed (replayable) and
//     seed-dependent (contending owners desynchronize).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/io.hpp"

namespace dualcast::util {
namespace {

/// The documented base schedule: initial, doubling, pinned at the cap
/// (mirrors Backoff's update rule: past cap/2, the next base is the cap).
std::vector<int> base_schedule(int initial, int cap, int attempts) {
  std::vector<int> bases;
  int base = initial < 1 ? 1 : initial;
  const int max = cap < initial ? initial : cap;
  for (int k = 0; k < attempts; ++k) {
    bases.push_back(base);
    base = base > max / 2 ? max : base * 2;
  }
  return bases;
}

TEST(UtilBackoff, DelaysStayWithinTheJitterWindowAcrossSeedGrid) {
  const int attempts = 12;
  const struct {
    int initial;
    int cap;
  } shapes[] = {{1, 8}, {5, 5}, {10, 1000}, {7, 640}, {100, 100000}};
  for (const auto& shape : shapes) {
    const std::vector<int> bases =
        base_schedule(shape.initial, shape.cap, attempts);
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
      Backoff backoff(shape.initial, shape.cap, seed * 7919u);
      for (int k = 0; k < attempts; ++k) {
        const int delay = backoff.next_ms();
        const int base = bases[static_cast<std::size_t>(k)];
        EXPECT_GE(delay, base - base / 2)
            << "seed " << seed << " attempt " << k << " shape ("
            << shape.initial << "," << shape.cap << ")";
        EXPECT_LE(delay, base) << "seed " << seed << " attempt " << k;
        EXPECT_GE(delay, 1) << "a zero delay would spin the retry loop";
      }
    }
  }
}

TEST(UtilBackoff, MeanDelayIsNonDecreasingUntilTheCap) {
  const int attempts = 10;
  const int seeds = 400;
  std::vector<double> mean(static_cast<std::size_t>(attempts), 0.0);
  for (int s = 1; s <= seeds; ++s) {
    Backoff backoff(10, 1000, static_cast<std::uint64_t>(s) * 2654435761u);
    for (int k = 0; k < attempts; ++k) {
      mean[static_cast<std::size_t>(k)] +=
          static_cast<double>(backoff.next_ms()) / seeds;
    }
  }
  // While the base is still doubling, consecutive means are ~2x apart
  // and sampling noise over 400 seeds cannot close that gap. Once the
  // cap pins the base, the means are statistically equal — noise makes
  // a plain >= flaky there, so the growth claim stops at the cap.
  const std::vector<int> bases = base_schedule(10, 1000, attempts);
  for (int k = 0; k + 1 < attempts; ++k) {
    const auto i = static_cast<std::size_t>(k);
    if (bases[i + 1] > bases[i]) {
      EXPECT_GT(mean[i + 1], mean[i]) << "attempt " << k;
    } else {
      // Both attempts draw from the same capped window: means within 5%.
      EXPECT_NEAR(mean[i + 1], mean[i], 0.05 * bases[i]) << "attempt " << k;
    }
  }
  // And the envelope really is exponential early on: attempt 3's mean
  // must clearly exceed attempt 0's whole window.
  EXPECT_GT(mean[3], 10.0);
}

TEST(UtilBackoff, ExtremeAttemptCountsStayPinnedAtTheCapWithoutOverflow) {
  // A wedged retry loop can call next_ms() thousands of times. Past the
  // cap the base must stay pinned there — never wrap negative, never
  // exceed the cap, never collapse to 0 — including when the cap itself
  // sits near INT_MAX (where a naive base*2 would overflow).
  struct Shape {
    int initial;
    int cap;
  };
  for (const Shape shape : {Shape{10, 1000},
                            Shape{1, 1},
                            Shape{1000, 1 << 30},
                            Shape{3, 2147483647}}) {
    Backoff backoff(shape.initial, shape.cap, /*seed=*/99);
    for (int attempt = 0; attempt < 5000; ++attempt) {
      const int delay = backoff.next_ms();
      ASSERT_GE(delay, 1) << "shape (" << shape.initial << ", "
                          << shape.cap << ") attempt " << attempt;
      ASSERT_LE(delay, shape.cap < shape.initial ? shape.initial
                                                 : shape.cap)
          << "shape (" << shape.initial << ", " << shape.cap
          << ") attempt " << attempt;
    }
    // Deep in the schedule the window is the capped base: jitter keeps
    // delays in [cap - cap/2, cap], so the mean sits near 3/4 cap — a
    // spot check that the schedule is pinned *at* the cap, not stuck at
    // some overflowed remnant.
    if (shape.cap >= 4) {
      int at_least_half_cap = 0;
      for (int attempt = 0; attempt < 64; ++attempt) {
        if (backoff.next_ms() >= shape.cap - shape.cap / 2) {
          ++at_least_half_cap;
        }
      }
      EXPECT_EQ(at_least_half_cap, 64)
          << "shape (" << shape.initial << ", " << shape.cap << ")";
    }
  }
}

TEST(UtilBackoff, ResetReturnsToTheInitialWindowAndReplaysPerSeed) {
  Backoff first(10, 1000, 42);
  std::vector<int> sequence;
  for (int k = 0; k < 6; ++k) sequence.push_back(first.next_ms());
  first.reset();
  const int after_reset = first.next_ms();
  EXPECT_LE(after_reset, 10) << "reset must re-open the initial window";
  EXPECT_GE(after_reset, 5);

  // Same seed → the same six delays (replayable retries); a different
  // seed must diverge somewhere (contending owners desync).
  Backoff replay(10, 1000, 42);
  std::vector<int> replayed;
  for (int k = 0; k < 6; ++k) replayed.push_back(replay.next_ms());
  EXPECT_EQ(sequence, replayed);

  bool diverged = false;
  Backoff other(10, 1000, 43);
  for (int k = 0; k < 6; ++k) {
    if (other.next_ms() != sequence[static_cast<std::size_t>(k)]) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace dualcast::util
