#include "util/bitstring.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dualcast {
namespace {

TEST(BitString, EmptyByDefault) {
  BitString bits;
  EXPECT_TRUE(bits.empty());
  EXPECT_EQ(bits.size(), 0u);
}

TEST(BitString, AppendAndReadSingleBits) {
  BitString bits;
  const std::vector<bool> pattern{true, false, true, true, false, false, true};
  for (const bool b : pattern) bits.append_bit(b);
  ASSERT_EQ(bits.size(), pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    EXPECT_EQ(bits.bit(i), pattern[i]) << "position " << i;
  }
}

TEST(BitString, AppendBitsRoundTrip) {
  BitString bits;
  bits.append_bits(0b1011, 4);
  bits.append_bits(0b001, 3);
  ASSERT_EQ(bits.size(), 7u);
  EXPECT_EQ(bits.chunk(0, 4), 0b1011u);
  EXPECT_EQ(bits.chunk(4, 3), 0b001u);
}

TEST(BitString, ChunkAcrossWordBoundary) {
  BitString bits;
  for (int i = 0; i < 130; ++i) bits.append_bit(i % 3 == 0);
  // Read a window straddling the 64-bit word boundary and verify bit by bit.
  const std::uint64_t chunk = bits.chunk(60, 10);
  for (int i = 0; i < 10; ++i) {
    const bool expected = (60 + i) % 3 == 0;
    const bool got = ((chunk >> (9 - i)) & 1u) != 0;
    EXPECT_EQ(got, expected) << "offset " << i;
  }
}

TEST(BitString, ChunkBoundsChecked) {
  BitString bits;
  bits.append_bits(0xFF, 8);
  EXPECT_THROW(bits.chunk(1, 8), ContractViolation);
  EXPECT_THROW(bits.chunk(0, 65), ContractViolation);
  EXPECT_NO_THROW(bits.chunk(0, 8));
}

TEST(BitString, CyclicWrapsAround) {
  BitString bits;
  bits.append_bits(0b101, 3);
  // Positions: 1,0,1 repeating. Reading 6 bits from 2 -> 1 1 0 1 1 0.
  EXPECT_EQ(bits.chunk_cyclic(2, 6), 0b110110u);
  // Position far beyond the length reduces mod size.
  EXPECT_EQ(bits.chunk_cyclic(2 + 3 * 100, 6), 0b110110u);
}

TEST(BitString, CyclicRequiresNonEmpty) {
  BitString bits;
  EXPECT_THROW(bits.chunk_cyclic(0, 1), ContractViolation);
}

TEST(BitString, RandomIsDeterministicPerSeed) {
  Rng r1(5);
  Rng r2(5);
  const BitString a = BitString::random(r1, 1000);
  const BitString b = BitString::random(r2, 1000);
  EXPECT_EQ(a, b);
  Rng r3(6);
  const BitString c = BitString::random(r3, 1000);
  EXPECT_FALSE(a == c);
}

TEST(BitString, RandomHasRequestedSize) {
  Rng rng(9);
  for (const std::size_t n : {0u, 1u, 63u, 64u, 65u, 1000u}) {
    EXPECT_EQ(BitString::random(rng, n).size(), n);
  }
}

TEST(BitString, RandomRoughlyBalanced) {
  Rng rng(13);
  const BitString bits = BitString::random(rng, 100000);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) ones += bits.bit(i) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / static_cast<double>(bits.size()), 0.5,
              0.01);
}

TEST(BitString, EqualityIncludesTailBits) {
  BitString a;
  BitString b;
  a.append_bits(0b1010, 4);
  b.append_bits(0b1010, 4);
  EXPECT_TRUE(a == b);
  b.append_bit(true);
  EXPECT_FALSE(a == b);
}

TEST(BitReader, SequentialTake) {
  BitString bits;
  bits.append_bits(0b110, 3);
  bits.append_bits(0b01, 2);
  BitReader reader(bits);
  EXPECT_EQ(reader.take(3), 0b110u);
  EXPECT_EQ(reader.take(2), 0b01u);
  EXPECT_EQ(reader.position(), 5u);
  // Further reads wrap cyclically.
  EXPECT_EQ(reader.take(3), 0b110u);
}

}  // namespace
}  // namespace dualcast
