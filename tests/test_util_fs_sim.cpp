// SharedFsSim — the NFS-client-view simulator. Each test runs two views
// ("machine A" and "machine B") over one backing directory and checks one
// simulated weak-semantics contract: read-your-writes within a view,
// stale content/attribute serves across views, delayed directory-entry
// visibility, ESTALE on files unlinked under a cached handle (and the
// one-retry helper that absorbs it), invalidate() forcing freshness,
// link() reporting server truth through a stale view, and same-seed
// schedule determinism.

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>
#include <vector>

#include "util/fs_sim.hpp"
#include "util/io.hpp"

namespace dualcast::util {
namespace {

namespace stdfs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  const stdfs::path dir =
      stdfs::path(::testing::TempDir()) / ("dualcast_fssim_" + tag);
  stdfs::remove_all(dir);
  stdfs::create_directories(dir);
  return dir.string();
}

SharedFsSimConfig always_fresh() {
  SharedFsSimConfig config;
  config.attr_stale_ops = 0;
  config.dir_stale_ops = 0;
  return config;
}

TEST(SharedFsSim, OwnWritesAlwaysVisible) {
  const std::string dir = fresh_dir("own_writes");
  SharedFsSimConfig config;
  config.attr_stale_ops = 1000;  // huge windows: only CTO keeps us honest
  config.dir_stale_ops = 1000;
  SharedFsSim view(real_fs(), config);
  const std::string path = dir + "/f";

  EXPECT_FALSE(view.exists(path));  // caches the negative
  view.write_file(path, "one");
  std::string got;
  ASSERT_TRUE(view.read_file(path, got));
  EXPECT_EQ(got, "one");
  view.append(path, "+two");
  ASSERT_TRUE(view.read_file(path, got));
  EXPECT_EQ(got, "one+two");
  EXPECT_EQ(view.file_size(path), 7);
  view.unlink(path);
  EXPECT_FALSE(view.exists(path));
}

TEST(SharedFsSim, CrossViewContentStalenessUntilInvalidate) {
  const std::string dir = fresh_dir("stale_content");
  SharedFsSim a(real_fs(), always_fresh());
  SharedFsSim b(real_fs(), always_fresh());
  const std::string path = dir + "/lease";

  a.write_file(path, "v1");
  std::string got;
  ASSERT_TRUE(b.read_file(path, got));
  EXPECT_EQ(got, "v1");

  // Pin B's cache, then update the file from A: B keeps serving v1.
  b.hold("lease", 100);
  a.write_file(path, "v2");
  ASSERT_TRUE(b.read_file(path, got));
  EXPECT_EQ(got, "v1");
  EXPECT_GE(b.stale_serves(), 1);
  EXPECT_EQ(b.file_size(path), 2);  // stale attributes too

  // invalidate() drops the pinned entry: the next read is server-fresh.
  b.invalidate(path);
  ASSERT_TRUE(b.read_file(path, got));
  EXPECT_EQ(got, "v2");
}

TEST(SharedFsSim, DirectoryEntryVisibilityDelayed) {
  const std::string dir = fresh_dir("dir_delay");
  SharedFsSim a(real_fs(), always_fresh());
  SharedFsSim b(real_fs(), always_fresh());

  EXPECT_TRUE(b.list(dir).empty());  // caches the empty listing
  b.hold(dir, 100);
  a.write_file(dir + "/job.meta", "m");
  EXPECT_TRUE(b.list(dir).empty());  // creation not visible yet
  EXPECT_GE(b.stale_serves(), 1);

  b.invalidate(dir);
  EXPECT_EQ(b.list(dir), std::vector<std::string>{"job.meta"});
}

TEST(SharedFsSim, EstaleOnUnlinkUnderCachedHandle) {
  const std::string dir = fresh_dir("estale");
  SharedFsSim a(real_fs(), always_fresh());
  SharedFsSim b(real_fs(), always_fresh());
  const std::string path = dir + "/shard.log";

  a.write_file(path, "records");
  std::string got;
  ASSERT_TRUE(b.read_file(path, got));  // B caches "exists"
  a.unlink(path);

  // Revalidation discovers the server-side unlink: one ESTALE, marked
  // transient, then the entry is dropped and the retry is a clean miss.
  try {
    b.read_file(path, got);
    FAIL() << "expected ESTALE";
  } catch (const IoError& error) {
    EXPECT_EQ(error.code(), ESTALE);
    EXPECT_TRUE(error.transient());
  }
  EXPECT_EQ(b.estale_thrown(), 1);
  EXPECT_FALSE(b.read_file(path, got));
  EXPECT_EQ(b.estale_thrown(), 1);  // one throw per event, not per read
}

TEST(SharedFsSim, ReadRetryHelperAbsorbsEstale) {
  const std::string dir = fresh_dir("estale_retry");
  SharedFsSim a(real_fs(), always_fresh());
  SharedFsSim b(real_fs(), always_fresh());
  const std::string path = dir + "/member";

  a.write_file(path, "rec");
  std::string got;
  ASSERT_TRUE(b.read_file(path, got));
  a.unlink(path);
  EXPECT_FALSE(read_file_retry_estale(b, path, got));
  EXPECT_EQ(b.estale_thrown(), 1);
}

TEST(SharedFsSim, EstaleCanBeDisabled) {
  const std::string dir = fresh_dir("estale_off");
  SharedFsSimConfig config = always_fresh();
  config.estale = false;
  SharedFsSim a(real_fs(), always_fresh());
  SharedFsSim b(real_fs(), config);
  const std::string path = dir + "/f";

  a.write_file(path, "x");
  std::string got;
  ASSERT_TRUE(b.read_file(path, got));
  a.unlink(path);
  EXPECT_FALSE(b.read_file(path, got));  // quiet miss instead of a throw
  EXPECT_EQ(b.estale_thrown(), 0);
}

TEST(SharedFsSim, LinkReportsServerTruthThroughStaleView) {
  const std::string dir = fresh_dir("lease_truth");
  SharedFsSim a(real_fs(), always_fresh());
  SharedFsSim b(real_fs(), always_fresh());
  const std::string lease = dir + "/shard0.lease";

  // B caches "no lease" and pins it; A then publishes one via link(2).
  EXPECT_FALSE(b.exists(lease));
  b.hold("shard0.lease", 100);
  a.write_file(dir + "/a.tmp", "owner a");
  ASSERT_TRUE(a.link(dir + "/a.tmp", lease));

  // B's *view* still says absent — but the acquisition attempt goes to
  // the server and loses. Leases stay truth; reads merely advise.
  EXPECT_FALSE(b.exists(lease));
  b.write_file(dir + "/b.tmp", "owner b");
  EXPECT_FALSE(b.link(dir + "/b.tmp", lease));
}

TEST(SharedFsSim, SameSeedSameStalenessSchedule) {
  const auto run = [](const std::string& dir, std::uint64_t seed) {
    SharedFsSimConfig config;
    config.seed = seed;
    config.attr_stale_ops = 4;
    SharedFsSim view(real_fs(), config);
    const std::string path = dir + "/f";
    std::vector<std::string> observed;
    for (int i = 0; i < 40; ++i) {
      real_fs().write_file(path, "v" + std::to_string(i));
      std::string got;
      observed.push_back(view.read_file(path, got) ? got : "<absent>");
    }
    observed.push_back("stale=" + std::to_string(view.stale_serves()));
    return observed;
  };
  const auto first = run(fresh_dir("det_a"), 42);
  const auto second = run(fresh_dir("det_b"), 42);
  EXPECT_EQ(first, second);
  // With 40 writes racing a 4-op window, some reads must have been stale.
  EXPECT_NE(first.back(), "stale=0");
}

}  // namespace
}  // namespace dualcast::util
