// The filesystem/fault-injection seam itself: CRC32C vectors, RealFs
// roundtrips, atomic whole-file writes, FaultyFs crash/torn/error/delay
// schedules (one-shot and sticky, with op/path filters and trace), the
// SlowFs and DeadlineFs decorators, free-space probing, the fake clock,
// and jittered backoff bounds/determinism/deadline clamping.

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>

#include "util/clock.hpp"
#include "util/io.hpp"

namespace dualcast::util {
namespace {

namespace stdfs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  const stdfs::path dir =
      stdfs::path(::testing::TempDir()) / ("dualcast_io_" + tag);
  stdfs::remove_all(dir);
  stdfs::create_directories(dir);
  return dir.string();
}

TEST(Crc32c, KnownVectors) {
  // The canonical CRC32C check value distinguishes Castagnoli from the
  // zlib polynomial.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_NE(crc32c("123456789"), crc32c("123456780"));
  EXPECT_NE(crc32c("a"), crc32c("b"));
}

TEST(RealFs, RoundTripAppendListUnlink) {
  const std::string dir = fresh_dir("roundtrip");
  Fs& fs = real_fs();
  const std::string path = dir + "/file.txt";
  EXPECT_FALSE(fs.exists(path));
  std::string content;
  EXPECT_FALSE(fs.read_file(path, content));
  fs.write_file(path, "alpha\n");
  fs.append(path, "beta\n");
  fs.fsync_file(path);
  ASSERT_TRUE(fs.read_file(path, content));
  EXPECT_EQ(content, "alpha\nbeta\n");
  EXPECT_EQ(fs.file_size(path), 11);
  EXPECT_EQ(fs.file_size(dir + "/absent"), -1);
  EXPECT_EQ(fs.list(dir), std::vector<std::string>{"file.txt"});
  EXPECT_TRUE(fs.list(dir + "/no_such_dir").empty());
  EXPECT_TRUE(fs.unlink(path));
  EXPECT_FALSE(fs.unlink(path));  // second unlink: already gone
}

TEST(RealFs, LinkIsCreateIfAbsent) {
  const std::string dir = fresh_dir("link");
  Fs& fs = real_fs();
  fs.write_file(dir + "/a", "A");
  fs.write_file(dir + "/b", "B");
  EXPECT_TRUE(fs.link(dir + "/a", dir + "/lock"));
  // Second publisher loses: the path exists, content stays the winner's.
  EXPECT_FALSE(fs.link(dir + "/b", dir + "/lock"));
  std::string content;
  ASSERT_TRUE(fs.read_file(dir + "/lock", content));
  EXPECT_EQ(content, "A");
}

TEST(RealFs, WriteFileAtomicReplacesAndLeavesNoTemp) {
  const std::string dir = fresh_dir("atomic");
  Fs& fs = real_fs();
  const std::string path = dir + "/target";
  fs.write_file_atomic(path, "one");
  fs.write_file_atomic(path, "two");
  std::string content;
  ASSERT_TRUE(fs.read_file(path, content));
  EXPECT_EQ(content, "two");
  EXPECT_EQ(fs.list(dir).size(), 1u);  // no .tmp.* debris
}

/// Decorator that deletes a directory tree immediately before a chosen
/// operation reaches the base Fs — the "target directory vanished
/// mid-write" race (concurrent cleanup, unmounted share) made
/// deterministic.
class VanishingDirFs final : public Fs {
 public:
  VanishingDirFs(Fs& base, std::string dir, std::string vanish_before)
      : base_(base),
        dir_(std::move(dir)),
        vanish_before_(std::move(vanish_before)) {}

  bool exists(const std::string& p) override { return base_.exists(p); }
  bool read_file(const std::string& p, std::string& out) override {
    return base_.read_file(p, out);
  }
  void write_file(const std::string& p, std::string_view d) override {
    maybe_vanish("write_file");
    base_.write_file(p, d);
  }
  void append(const std::string& p, std::string_view d) override {
    base_.append(p, d);
  }
  void fsync_file(const std::string& p) override {
    maybe_vanish("fsync_file");
    base_.fsync_file(p);
  }
  bool link(const std::string& e, const std::string& l) override {
    return base_.link(e, l);
  }
  void rename(const std::string& from, const std::string& to) override {
    maybe_vanish("rename");
    base_.rename(from, to);
  }
  bool unlink(const std::string& p) override { return base_.unlink(p); }
  std::vector<std::string> list(const std::string& d) override {
    return base_.list(d);
  }
  void create_dirs(const std::string& d) override { base_.create_dirs(d); }
  void sync_dir(const std::string& d) override { base_.sync_dir(d); }
  std::int64_t file_size(const std::string& p) override {
    return base_.file_size(p);
  }

 private:
  void maybe_vanish(const std::string& op) {
    if (op == vanish_before_) stdfs::remove_all(dir_);
  }

  Fs& base_;
  std::string dir_;
  std::string vanish_before_;
};

TEST(RealFs, WriteFileAtomicSurvivesTargetDirVanishingMidWrite) {
  // Whichever step the directory disappears under — the temp write, the
  // temp fsync, or the rename — the contract is a clean IoError (never a
  // crash or a silent no-op) and no orphaned .tmp.* file once the
  // directory exists again.
  for (const std::string step : {"write_file", "fsync_file", "rename"}) {
    const std::string dir = fresh_dir("vanish_" + step);
    VanishingDirFs fs(real_fs(), dir, step);
    EXPECT_THROW(fs.write_file_atomic(dir + "/target", "payload"), IoError)
        << "vanish before " << step;
    stdfs::create_directories(dir);
    EXPECT_TRUE(real_fs().list(dir).empty())
        << "orphan left when dir vanished before " << step;
  }
}

TEST(FaultyFs, CrashAtScheduledOpWithFilters) {
  const std::string dir = fresh_dir("faulty_crash");
  FaultyFs fs(real_fs());
  InjectedFault fault;
  fault.kind = InjectedFault::Kind::crash;
  fault.at = 1;  // the *second* matching op
  fault.op = "write";
  fault.path_substr = "victim";
  fs.inject(fault);

  fs.write_file(dir + "/bystander", "x");  // op filter: not a "victim"
  fs.write_file(dir + "/victim1", "x");    // match 0: passes
  EXPECT_THROW(fs.write_file(dir + "/victim2", "x"), InjectedCrash);
  // One-shot: after firing the schedule is spent.
  fs.write_file(dir + "/victim3", "x");
  EXPECT_EQ(fs.faults_fired(), 1);

  const auto trace = fs.trace();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0].first, "write");
  EXPECT_EQ(trace[2].second, dir + "/victim2");
  EXPECT_EQ(fs.ops(), 4);
}

TEST(FaultyFs, TornAppendPersistsPrefixThenCrashes) {
  const std::string dir = fresh_dir("faulty_torn");
  FaultyFs fs(real_fs());
  const std::string path = dir + "/log";
  fs.append(path, "first\n");
  InjectedFault fault;
  fault.kind = InjectedFault::Kind::torn;
  fault.at = 0;  // `at` counts *matching* ops from injection onward
  fault.op = "append";
  fault.keep_bytes = 3;
  fs.inject(fault);
  EXPECT_THROW(fs.append(path, "second\n"), InjectedCrash);
  std::string content;
  ASSERT_TRUE(real_fs().read_file(path, content));
  EXPECT_EQ(content, "first\nsec");  // the torn prefix survived
}

TEST(FaultyFs, ErrorFaultsAreTypedAndStickyFaultsRepeat) {
  const std::string dir = fresh_dir("faulty_err");
  FaultyFs fs(real_fs());
  InjectedFault eio;
  eio.kind = InjectedFault::Kind::error;
  eio.at = 0;
  eio.op = "fsync";
  eio.err = EIO;
  eio.sticky = true;
  fs.inject(eio);
  fs.write_file(dir + "/f", "x");
  for (int i = 0; i < 2; ++i) {
    try {
      fs.fsync_file(dir + "/f");
      FAIL() << "expected injected EIO";
    } catch (const IoError& error) {
      EXPECT_EQ(error.code(), EIO);
      EXPECT_TRUE(error.transient());
    }
  }
  EXPECT_EQ(fs.faults_fired(), 2);  // sticky: fires every matching op
  // Unrelated ops still pass through.
  std::string content;
  EXPECT_TRUE(fs.read_file(dir + "/f", content));
}

TEST(FaultyFs, DelayFaultStallsAdvancesTickClockAndRunsHook) {
  const std::string dir = fresh_dir("faulty_delay");
  FakeClock ticks(1000);
  FaultyFs fs(real_fs());
  fs.set_tick_clock(&ticks);
  int hook_runs = 0;
  std::string seen_during_stall;
  fs.set_on_stall([&] {
    ++hook_runs;
    // The hook runs outside the FaultyFs lock, so it can do IO through
    // *another* Fs — the stall-then-steal tests' whole mechanism.
    real_fs().write_file(dir + "/from_hook", "peer was here");
    real_fs().read_file(dir + "/from_hook", seen_during_stall);
  });
  InjectedFault fault;
  fault.kind = InjectedFault::Kind::delay;
  fault.at = 1;  // second matching append
  fault.op = "append";
  fault.path_substr = "log";
  fault.delay_ticks = 30;
  fs.inject(fault);

  const std::string path = dir + "/log";
  fs.append(path, "one\n");  // match 0: passes untouched
  EXPECT_EQ(ticks.now_seconds(), 1000);
  fs.append(path, "two\n");  // match 1: stalls, then completes
  EXPECT_EQ(ticks.now_seconds(), 1030);  // the stall *was* time passing
  EXPECT_EQ(hook_runs, 1);
  EXPECT_EQ(seen_during_stall, "peer was here");
  EXPECT_EQ(fs.stalls(), 1);
  EXPECT_EQ(fs.faults_fired(), 1);
  // The stalled op itself succeeded — a hang is not a failure.
  std::string content;
  ASSERT_TRUE(real_fs().read_file(path, content));
  EXPECT_EQ(content, "one\ntwo\n");
  fs.append(path, "three\n");  // one-shot: schedule spent
  EXPECT_EQ(fs.stalls(), 1);
}

TEST(FaultyFs, DelayComposesWithErrorSchedule) {
  // A delay and an error scheduled on the same op: the op stalls *and*
  // then fails — a hung-then-dead mount, the nastiest gray failure.
  const std::string dir = fresh_dir("faulty_delay_err");
  FakeClock ticks(0);
  FaultyFs fs(real_fs());
  fs.set_tick_clock(&ticks);
  InjectedFault delay;
  delay.kind = InjectedFault::Kind::delay;
  delay.at = 0;
  delay.op = "fsync";
  delay.delay_ticks = 7;
  fs.inject(delay);
  InjectedFault err;
  err.kind = InjectedFault::Kind::error;
  err.at = 0;
  err.op = "fsync";
  err.err = EIO;
  fs.inject(err);
  fs.write_file(dir + "/f", "x");
  EXPECT_THROW(fs.fsync_file(dir + "/f"), IoError);
  EXPECT_EQ(ticks.now_seconds(), 7);  // stalled first, then threw
  EXPECT_EQ(fs.stalls(), 1);
  EXPECT_EQ(fs.faults_fired(), 2);
}

TEST(SlowFs, TaxesEveryOpOnTheTickClock) {
  const std::string dir = fresh_dir("slowfs");
  FakeClock ticks(0);
  SlowFs fs(real_fs(), /*delay_ms=*/0, &ticks, /*tick_seconds=*/2);
  fs.write_file(dir + "/f", "x");
  std::string content;
  ASSERT_TRUE(fs.read_file(dir + "/f", content));
  EXPECT_EQ(content, "x");
  fs.append(dir + "/f", "y");
  EXPECT_EQ(ticks.now_seconds(), 6);  // three ops, 2 ticks each
  EXPECT_EQ(fs.file_size(dir + "/f"), 2);
  EXPECT_EQ(ticks.now_seconds(), 8);
}

TEST(DeadlineFs, ExpiredBudgetTurnsOpsIntoTransientTimeouts) {
  const std::string dir = fresh_dir("deadline");
  FakeClock clock(100);
  DeadlineFs fs(real_fs());
  // Inactive deadline (the default): everything passes.
  fs.write_file(dir + "/f", "x");
  fs.set_deadline(Deadline(clock, 10));
  fs.append(dir + "/f", "y");  // 0s elapsed: within budget
  clock.advance(10);
  // The op *completes* on disk, then reports timeout — "maybe done",
  // which idempotent record appends absorb.
  try {
    fs.append(dir + "/f", "z");
    FAIL() << "expected ETIMEDOUT";
  } catch (const IoError& error) {
    EXPECT_EQ(error.code(), ETIMEDOUT);
    EXPECT_TRUE(error.transient());
  }
  std::string content;
  ASSERT_TRUE(real_fs().read_file(dir + "/f", content));
  EXPECT_EQ(content, "xyz");
  // Clearing the deadline re-opens the seam.
  fs.set_deadline(Deadline());
  fs.append(dir + "/f", "w");
  EXPECT_EQ(fs.file_size(dir + "/f"), 4);
}

TEST(DeadlineTest, RemainingAndExpiry) {
  FakeClock clock(50);
  Deadline none;
  EXPECT_FALSE(none.active());
  EXPECT_FALSE(none.expired());
  EXPECT_GT(none.remaining_ms(), 1'000'000'000LL);  // effectively forever
  Deadline d(clock, 5);
  EXPECT_TRUE(d.active());
  EXPECT_EQ(d.remaining_seconds(), 5);
  EXPECT_EQ(d.remaining_ms(), 5000);
  clock.advance(5);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0);
}

TEST(RealFs, FreeBytesProbesTheFilesystem) {
  const std::string dir = fresh_dir("statvfs");
  EXPECT_GT(real_fs().free_bytes(dir), 0);
  EXPECT_EQ(real_fs().free_bytes(dir + "/no/such/path"), -1);
}

TEST(IoErrorClass, TransientCodes) {
  EXPECT_TRUE(IoError("x", EIO).transient());
  EXPECT_TRUE(IoError("x", ENOSPC).transient());
  EXPECT_TRUE(IoError("x", EAGAIN).transient());
  EXPECT_TRUE(IoError("x", ETIMEDOUT).transient());
  EXPECT_FALSE(IoError("x", EROFS).transient());
  EXPECT_FALSE(IoError("x", ENOENT).transient());
}

TEST(FakeClockTest, SetAndAdvance) {
  FakeClock clock(100);
  EXPECT_EQ(clock.now_seconds(), 100);
  clock.advance(60);
  EXPECT_EQ(clock.now_seconds(), 160);
  clock.set(5);
  EXPECT_EQ(clock.now_seconds(), 5);
}

TEST(BackoffTest, JitteredDoublingWithinBoundsAndDeterministic) {
  Backoff a(10, 1000, /*seed=*/7);
  Backoff b(10, 1000, /*seed=*/7);
  int base = 10;
  for (int i = 0; i < 12; ++i) {
    const int next_a = a.next_ms();
    EXPECT_EQ(next_a, b.next_ms());  // same seed, same schedule
    EXPECT_GE(next_a, base / 2);
    EXPECT_LE(next_a, base);
    base = base >= 1000 ? 1000 : base * 2;
    if (base > 1000) base = 1000;
  }
  a.reset();
  const int restarted = a.next_ms();
  EXPECT_GE(restarted, 5);
  EXPECT_LE(restarted, 10);
}

TEST(BackoffTest, NextMsClampsToRemainingBudget) {
  Backoff backoff(100, 1000, /*seed=*/3);
  // A huge remaining budget never clamps; the draw stays in-bounds.
  const int unclamped = backoff.next_ms(1'000'000);
  EXPECT_GE(unclamped, 50);
  EXPECT_LE(unclamped, 100);
  // A 1ms budget clamps any draw down to it; a spent budget to zero —
  // the retry loop must never sleep past its op deadline.
  EXPECT_EQ(backoff.next_ms(1), 1);
  EXPECT_EQ(backoff.next_ms(0), 0);
  EXPECT_EQ(backoff.next_ms(-5), 0);
}

}  // namespace
}  // namespace dualcast::util
