#include "util/mathutil.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/strfmt.hpp"

namespace dualcast {
namespace {

TEST(MathUtil, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_THROW(floor_log2(0), ContractViolation);
}

TEST(MathUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_THROW(ceil_log2(0), ContractViolation);
}

TEST(MathUtil, CLog2NeverBelowOne) {
  EXPECT_EQ(clog2(1), 1);
  EXPECT_EQ(clog2(2), 1);
  EXPECT_EQ(clog2(3), 2);
  EXPECT_EQ(clog2(256), 8);
}

TEST(MathUtil, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1u << 20));
  EXPECT_FALSE(is_pow2((1u << 20) + 1));
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_THROW(ceil_div(1, 0), ContractViolation);
}

TEST(MathUtil, Pow2Neg) {
  EXPECT_DOUBLE_EQ(pow2_neg(0), 1.0);
  EXPECT_DOUBLE_EQ(pow2_neg(1), 0.5);
  EXPECT_DOUBLE_EQ(pow2_neg(10), 1.0 / 1024.0);
  EXPECT_THROW(pow2_neg(-1), ContractViolation);
}

TEST(MathUtil, RoundUp) {
  EXPECT_EQ(round_up(0, 4), 0);
  EXPECT_EQ(round_up(1, 4), 4);
  EXPECT_EQ(round_up(4, 4), 4);
  EXPECT_EQ(round_up(5, 4), 8);
  EXPECT_EQ(round_up(6, 3), 6);
  EXPECT_THROW(round_up(5, 0), ContractViolation);
}

TEST(StrFmt, Str) {
  EXPECT_EQ(str("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(str(), "");
}

TEST(StrFmt, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_double(-1.005, 1), "-1.0");
}

TEST(StrFmt, Pad) {
  EXPECT_EQ(pad("ab", 5), "ab   ");
  EXPECT_EQ(pad("ab", -5), "   ab");
  EXPECT_EQ(pad("abcdef", 3), "abcdef");
}

TEST(Contracts, ViolationMessageNamesKindAndExpression) {
  try {
    DC_EXPECTS_MSG(1 == 2, "should never hold");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("should never hold"), std::string::npos);
  }
}

}  // namespace
}  // namespace dualcast
