#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <set>
#include <vector>

#include "util/assert.hpp"

namespace dualcast {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at step " << i;
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 5);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u) << "all values in [-2,5] should occur";
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.1, 0.01);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  const double p = 0.3;
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, p, 0.01);
}

TEST(Rng, CoinPow2Frequencies) {
  Rng rng(31);
  const int trials = 200000;
  for (const int i : {0, 1, 2, 4}) {
    int hits = 0;
    for (int t = 0; t < trials; ++t) {
      if (rng.coin_pow2(i)) ++hits;
    }
    const double expected = std::ldexp(1.0, -i);
    EXPECT_NEAR(static_cast<double>(hits) / trials, expected,
                0.01 + expected * 0.05)
        << "i=" << i;
  }
}

TEST(Rng, CoinPow2ZeroAlwaysTrue) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(rng.coin_pow2(0));
}

TEST(Rng, CoinPow2RejectsBadExponent) {
  Rng rng(37);
  EXPECT_THROW(rng.coin_pow2(-1), ContractViolation);
  EXPECT_THROW(rng.coin_pow2(64), ContractViolation);
}

TEST(Rng, BitsWidth) {
  Rng rng(41);
  EXPECT_EQ(rng.bits(0), 0u);
  for (int k = 1; k <= 64; ++k) {
    const std::uint64_t v = rng.bits(k);
    if (k < 64) {
      ASSERT_LT(v, std::uint64_t{1} << k) << "k=" << k;
    }
  }
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  // fork(tag) must not perturb the parent stream's own outputs.
  Rng a(99);
  Rng b(99);
  (void)a.fork(1);
  std::vector<std::uint64_t> va;
  std::vector<std::uint64_t> vb;
  for (int i = 0; i < 100; ++i) {
    va.push_back(a.next_u64());
    vb.push_back(b.next_u64());
  }
  EXPECT_EQ(va, vb);
}

TEST(Rng, ForkDistinctTagsDistinctStreams) {
  Rng parent(123);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkSameTagTwiceStillDistinct) {
  // The fork counter makes successive forks independent even with equal tags.
  Rng parent(123);
  Rng c1 = parent.fork(7);
  Rng c2 = parent.fork(7);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkByStringTag) {
  Rng parent(55);
  Rng a = parent.fork("adversary");
  Rng b = parent.fork("node");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkReproducible) {
  Rng p1(77);
  Rng p2(77);
  Rng a = p1.fork(3);
  Rng b = p2.fork(3);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

class RngPow2Param : public ::testing::TestWithParam<int> {};

TEST_P(RngPow2Param, MatchesExpectedProbability) {
  const int i = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(i));
  const int trials = 400000;
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    if (rng.coin_pow2(i)) ++hits;
  }
  const double expected = std::ldexp(1.0, -i);
  const double sigma =
      std::sqrt(expected * (1 - expected) / trials);
  EXPECT_NEAR(static_cast<double>(hits) / trials, expected, 6 * sigma + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ladder, RngPow2Param, ::testing::Values(1, 2, 3, 5, 8));

TEST(RngWordMask, MatchesExpectedProbabilityPerBit) {
  // bernoulli_pow2_mask(i): each of the 64 bits is Bernoulli(2^-i).
  for (const int i : {0, 1, 3, 6}) {
    Rng rng(9000 + static_cast<std::uint64_t>(i));
    const int masks = 8000;
    std::int64_t set_bits = 0;
    for (int t = 0; t < masks; ++t) {
      set_bits += std::popcount(rng.bernoulli_pow2_mask(i));
    }
    const double trials = 64.0 * masks;
    const double expected = std::ldexp(1.0, -i);
    const double sigma = std::sqrt(expected * (1 - expected) / trials);
    EXPECT_NEAR(static_cast<double>(set_bits) / trials, expected,
                6 * sigma + 1e-9)
        << "i=" << i;
  }
}

TEST(RngWordMask, LanesAreIndependentAcrossDraws) {
  // No lane should be stuck: over many masks every bit position mixes.
  Rng rng(4242);
  std::array<int, 64> lane_hits{};
  const int masks = 4000;
  for (int t = 0; t < masks; ++t) {
    const std::uint64_t m = rng.bernoulli_pow2_mask(2);
    for (int b = 0; b < 64; ++b) lane_hits[static_cast<std::size_t>(b)] +=
        static_cast<int>((m >> b) & 1u);
  }
  const double expected = masks * 0.25;
  const double sigma = std::sqrt(masks * 0.25 * 0.75);
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(lane_hits[static_cast<std::size_t>(b)], expected, 6 * sigma)
        << "lane " << b;
  }
}

TEST(Pow2MaskLadderTest, MasksAreNestedPrefixes) {
  // mask(i+1) ⊆ mask(i), mask(0) is all-ones, and deepening is lazy over
  // one stream: the same ladder depth from the same stream state is
  // reproducible.
  Rng a(13);
  Rng b(13);
  Pow2MaskLadder la(a);
  Pow2MaskLadder lb(b);
  EXPECT_EQ(la.mask(0), ~std::uint64_t{0});
  std::uint64_t prev = la.mask(0);
  for (int i = 1; i <= 12; ++i) {
    const std::uint64_t m = la.mask(i);
    EXPECT_EQ(m & ~prev, 0u) << "mask(" << i << ") not nested";
    prev = m;
  }
  // Asking out of order resolves to the same masks (lazy prefix property).
  EXPECT_EQ(lb.mask(12), la.mask(12));
  EXPECT_EQ(lb.mask(5), la.mask(5));
}

TEST(Pow2MaskLadderTest, LadderDepthMatchesProbability) {
  // Consuming one lane per ladder (the kernel contract) at depth i is a
  // Bernoulli(2^-i) trial.
  Rng rng(2718);
  const int trials = 60000;
  const int depth = 4;
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    Pow2MaskLadder ladder(rng);
    hits += static_cast<int>((ladder.mask(depth) >> (t % 64)) & 1u);
  }
  const double expected = std::ldexp(1.0, -depth);
  const double sigma = std::sqrt(expected * (1 - expected) / trials);
  EXPECT_NEAR(static_cast<double>(hits) / trials, expected, 6 * sigma);
}

}  // namespace
}  // namespace dualcast
