// AVX2 / scalar parity for the runtime-dispatched SIMD primitives: on an
// AVX2 host both implementations are exercised against each other and
// against brute-force references; elsewhere the scalar path is checked
// against the references alone (and the dispatcher must report scalar).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace dualcast {
namespace {

struct ScanCase {
  std::vector<std::uint64_t> bits;
  std::vector<std::int32_t> index;
  std::vector<std::uint64_t> tx;
};

ScanCase random_scan_case(Rng& rng, int tx_words, double density) {
  ScanCase c;
  c.tx.resize(static_cast<std::size_t>(tx_words));
  for (auto& w : c.tx) {
    w = rng.bernoulli(0.7) ? (rng.next_u64() & rng.next_u64()) : 0;
  }
  for (int k = 0; k < tx_words; ++k) {
    if (!rng.bernoulli(density)) continue;
    c.index.push_back(k);
    c.bits.push_back(rng.next_u64() & rng.next_u64() & rng.next_u64());
  }
  return c;
}

/// Brute-force reference: exact popcount sum, capped at 2, last nonzero
/// AND word recorded (the contract consumed when the result is 1).
int reference_scan(const ScanCase& c, int start, std::uint64_t& hit_word,
                   std::int32_t& hit_index) {
  int count = start;
  for (std::size_t k = 0; k < c.bits.size(); ++k) {
    const std::uint64_t m =
        c.bits[k] & c.tx[static_cast<std::size_t>(c.index[k])];
    if (m == 0) continue;
    count += std::popcount(m);
    hit_word = m;
    hit_index = c.index[k];
    if (count >= 2) return 2;
  }
  return count;
}

TEST(SimdParity, AndPopcountCap2MatchesReferenceAndAvx2) {
  Rng rng(808);
  int ones_seen = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const ScanCase c = random_scan_case(rng, 1 + trial % 23,
                                        0.1 + 0.8 * rng.uniform01());
    for (const int start : {0, 1}) {
      std::uint64_t ref_hit = 0, scalar_hit = 0;
      std::int32_t ref_idx = 0, scalar_idx = 0;
      const int ref = reference_scan(c, start, ref_hit, ref_idx);
      const int scalar = simd::detail::and_popcount_cap2_scalar(
          c.bits, c.index, c.tx.data(), start, scalar_hit, scalar_idx);
      ASSERT_EQ(scalar, ref);
      if (ref == 1 && start == 0) {
        ASSERT_EQ(scalar_hit, ref_hit);
        ASSERT_EQ(scalar_idx, ref_idx);
        ++ones_seen;
      }
      if (simd::detail::avx2_supported()) {
        std::uint64_t avx_hit = 0;
        std::int32_t avx_idx = 0;
        const int avx = simd::detail::and_popcount_cap2_avx2(
            c.bits, c.index, c.tx.data(), start, avx_hit, avx_idx);
        ASSERT_EQ(avx, ref);
        if (ref == 1 && start == 0) {
          ASSERT_EQ(avx_hit, ref_hit);
          ASSERT_EQ(avx_idx, ref_idx);
        }
      }
    }
  }
  EXPECT_GT(ones_seen, 10) << "unique-contender branch barely exercised";
}

TEST(SimdParity, GatherLadderBitsMatchesReferenceAndAvx2) {
  Rng rng(909);
  for (int trial = 0; trial < 400; ++trial) {
    std::uint64_t masks[64];
    masks[0] = ~std::uint64_t{0};
    const int depth = 1 + static_cast<int>(rng.uniform_int(0, 62));
    for (int d = 1; d <= depth; ++d) masks[d] = masks[d - 1] & rng.next_u64();
    std::uint8_t lane_index[64] = {};
    const std::uint64_t lanes = rng.next_u64() & rng.next_u64();
    for (int j = 0; j < 64; ++j) {
      lane_index[j] = static_cast<std::uint8_t>(rng.uniform_int(0, depth));
    }
    std::uint64_t expected = 0;
    for (int j = 0; j < 64; ++j) {
      if ((lanes >> j) & 1u) {
        expected |= masks[lane_index[j]] & (std::uint64_t{1} << j);
      }
    }
    ASSERT_EQ(
        simd::detail::gather_ladder_bits_scalar(masks, lane_index, lanes),
        expected);
    if (simd::detail::avx2_supported()) {
      ASSERT_EQ(
          simd::detail::gather_ladder_bits_avx2(masks, lane_index, lanes),
          expected);
    }
    ASSERT_EQ(simd::gather_ladder_bits(masks, lane_index, lanes), expected);
  }
}

TEST(SimdDispatch, ForceScalarPinsTheDispatcher) {
  simd::force_scalar(true);
  EXPECT_FALSE(simd::avx2_active());
  simd::force_scalar(false);
  EXPECT_EQ(simd::avx2_active(), simd::detail::avx2_supported());
}

}  // namespace
}  // namespace dualcast
